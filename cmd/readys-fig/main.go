// readys-fig regenerates the data behind a figure of the paper's evaluation
// section and writes it as CSV (or an aligned table on the terminal).
//
// Usage:
//
//	readys-fig -fig 3 -models models -o figure3.csv
//	readys-fig -fig 7
//
// Figures 3-6 need the corresponding trained checkpoints (readys-train -all);
// missing agents are trained on the fly, which takes minutes per agent.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"readys/internal/exp"
)

func main() {
	var (
		fig      = flag.String("fig", "3", "figure: 3, 4, 5, 6, 7, resilience, stream, ablation or search")
		models   = flag.String("models", exp.DefaultModelsDir(), "model directory")
		out      = flag.String("o", "", "output CSV path (default: stdout as text)")
		runs     = flag.Int("runs", 10, "figure 7: episodes per size")
		episodes = flag.Int("episodes", 4000, "ablation/search: training episodes per variant")
		trials   = flag.Int("trials", 6, "search: number of sampled configurations")
	)
	flag.Parse()

	var (
		tab *exp.Table
		err error
	)
	switch *fig {
	case "3":
		tab, err = exp.Figure3(*models)
	case "4":
		tab, err = exp.Figure4(*models)
	case "5":
		tab, err = exp.Figure5(*models)
	case "6":
		tab, err = exp.Figure6(*models)
	case "7":
		tab, _ = exp.Figure7([]int{2, 4, 6, 8, 10, 12}, *runs)
	case "resilience":
		tab, err = exp.ResilienceFigure(*models)
	case "stream":
		tab, err = exp.StreamFigure(*models)
	case "ablation":
		tab, err = exp.Ablation(*models, *episodes)
	case "search":
		_, tab, err = exp.RandomSearch(rand.New(rand.NewSource(1)), *trials, *episodes)
	default:
		log.Fatalf("unknown figure %q (want 3-7, resilience, stream, ablation or search)", *fig)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		fmt.Fprint(os.Stdout, tab.Text())
		return
	}
	if err := os.WriteFile(*out, []byte(tab.CSV()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, len(tab.Rows))
}
