// readys-report regenerates the data of every figure of the paper's
// evaluation section in one run, writing one CSV per figure plus a combined
// Markdown report. It is the command that produced the measured numbers in
// EXPERIMENTS.md.
//
// Usage:
//
//	readys-report -models models -out results
//
// All figure agents must already be trained (readys-train -all).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"readys/internal/exp"
)

func main() {
	var (
		models  = flag.String("models", exp.DefaultModelsDir(), "model directory")
		out     = flag.String("out", "results", "output directory")
		skipFig = flag.String("skip", "", "comma-separated figure ids to skip (e.g. 4,6)")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	skip := map[string]bool{}
	for _, s := range strings.Split(*skipFig, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skip[s] = true
		}
	}

	type job struct {
		id  string
		run func() (*exp.Table, error)
	}
	jobs := []job{
		{"3", func() (*exp.Table, error) { return exp.Figure3(*models) }},
		{"4", func() (*exp.Table, error) { return exp.Figure4(*models) }},
		{"5", func() (*exp.Table, error) { return exp.Figure5(*models) }},
		{"6", func() (*exp.Table, error) { return exp.Figure6(*models) }},
		{"7", func() (*exp.Table, error) { t, _ := exp.Figure7([]int{2, 4, 6, 8, 10, 12}, 10); return t, nil }},
	}

	var report strings.Builder
	report.WriteString("# READYS reproduction report\n\ngenerated " + time.Now().UTC().Format(time.RFC3339) + "\n")
	for _, j := range jobs {
		if skip[j.id] {
			fmt.Printf("figure %s: skipped\n", j.id)
			continue
		}
		start := time.Now()
		tab, err := j.run()
		if err != nil {
			log.Fatalf("figure %s: %v", j.id, err)
		}
		csvPath := filepath.Join(*out, "figure"+j.id+".csv")
		if err := os.WriteFile(csvPath, []byte(tab.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("figure %s: %d rows in %s → %s\n", j.id, len(tab.Rows), time.Since(start).Round(time.Second), csvPath)
		report.WriteString("\n## " + tab.Title + "\n\n```\n" + tab.Text() + "```\n")
	}

	reportPath := filepath.Join(*out, "report.md")
	if err := os.WriteFile(reportPath, []byte(report.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", reportPath)
}
