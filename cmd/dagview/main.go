// dagview dumps a factorisation task graph as Graphviz DOT, with per-kernel
// colours, plus a summary of its size and structure.
//
// Usage:
//
//	dagview -kind cholesky -T 4 -o cholesky4.dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"readys/internal/taskgraph"
)

func main() {
	var (
		kindStr = flag.String("kind", "cholesky", "DAG family: cholesky, lu or qr")
		tiles   = flag.Int("T", 4, "tile count per matrix dimension")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	kind, err := taskgraph.KindFromString(*kindStr)
	if err != nil {
		log.Fatal(err)
	}
	g := taskgraph.NewByKind(kind, *tiles)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := taskgraph.WriteDOT(w, g); err != nil {
		log.Fatal(err)
	}
	counts := g.KernelCounts()
	fmt.Fprintf(os.Stderr, "%s T=%d: %d tasks, %d edges, critical path %d\n",
		kind, *tiles, g.NumTasks(), g.NumEdges(), g.CriticalPathLength())
	for k := 0; k < taskgraph.NumKernels; k++ {
		fmt.Fprintf(os.Stderr, "  %-8s %d\n", g.KernelNames[k], counts[k])
	}
}
