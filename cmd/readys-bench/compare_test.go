package main

import (
	"strings"
	"testing"
)

func baselineReport() report {
	return report{
		Rev: "aaaaaaa",
		SpMM: []spmmResult{
			{N: 128, SparseNsOp: 25000, DenseNsOp: 250000},
			{N: 256, SparseNsOp: 54000, DenseNsOp: 1900000},
		},
		Decide: []decideResult{{Kind: "cholesky", T: 8, NsPerDecision: 600000}},
		Train:  []trainResult{{Kind: "cholesky", T: 8, SparseEpsPerSec: 4.8}},
	}
}

// currentReport mirrors the baseline with small, tolerable drift, plus a
// stream section the baseline predates (must be skipped, not judged).
func currentReport() report {
	return report{
		Rev: "bbbbbbb",
		SpMM: []spmmResult{
			{N: 128, SparseNsOp: 27000, DenseNsOp: 260000},
		},
		Decide: []decideResult{{Kind: "cholesky", T: 8, NsPerDecision: 630000}},
		Train:  []trainResult{{Kind: "cholesky", T: 8, SparseEpsPerSec: 4.4}},
		Stream: []streamResult{{Policy: "mct", Jobs: 8, JobsPerSec: 120}},
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	rows, skipped, regressed := compareReports(baselineReport(), currentReport(), 0.20)
	if regressed {
		t.Fatalf("drift within 20%% flagged as regression: %+v", rows)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 matched rows (spmm 128, decide, train), got %d: %+v", len(rows), rows)
	}
	// Both directions of non-match must surface: the baseline's spmm n=256
	// row has no current counterpart, and the current stream row predates
	// the baseline.
	joined := strings.Join(skipped, "; ")
	if !strings.Contains(joined, "spmm n=256: not in current run") {
		t.Errorf("baseline-only row not reported skipped: %q", joined)
	}
	if !strings.Contains(joined, "stream mct jobs=8: not in baseline") {
		t.Errorf("current-only stream row not reported skipped: %q", joined)
	}
}

// TestCompareSyntheticRegression is the acceptance check for the gate: inject
// a regression in each judged metric in turn and require the gate to trip on
// exactly that row, in the metric's harm direction.
func TestCompareSyntheticRegression(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*report)
		metric string
	}{
		{"spmm ns/op up", func(r *report) { r.SpMM[0].SparseNsOp = 40000 }, "sparse_ns_op"},
		{"decide ns up", func(r *report) { r.Decide[0].NsPerDecision = 900000 }, "ns_per_decision"},
		{"train eps down", func(r *report) { r.Train[0].SparseEpsPerSec = 2.0 }, "sparse_eps_per_sec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := currentReport()
			tc.mutate(&cur)
			rows, _, regressed := compareReports(baselineReport(), cur, 0.20)
			if !regressed {
				t.Fatalf("synthetic regression not caught: %+v", rows)
			}
			for _, r := range rows {
				if r.Metric == tc.metric && !r.Regressed {
					t.Errorf("row %s %s should be regressed: %+v", r.Section, r.Config, r)
				}
				if r.Metric != tc.metric && r.Regressed {
					t.Errorf("unrelated row flagged: %+v", r)
				}
			}
			if w := worstDelta(rows); w <= 0.20 {
				t.Errorf("worst delta %v should exceed tolerance", w)
			}
		})
	}
}

// A throughput metric that improves (goes up) must never trip the gate, even
// when the change is far beyond the tolerance — direction matters.
func TestCompareImprovementNotRegression(t *testing.T) {
	cur := currentReport()
	cur.Train[0].SparseEpsPerSec = 50 // 10x faster training
	cur.SpMM[0].SparseNsOp = 1000     // 25x faster spmm
	_, _, regressed := compareReports(baselineReport(), cur, 0.20)
	if regressed {
		t.Fatal("improvements flagged as regression")
	}
}

func TestPrintComparisonTable(t *testing.T) {
	cur := currentReport()
	cur.Decide[0].NsPerDecision = 900000
	rows, skipped, _ := compareReports(baselineReport(), cur, 0.20)
	var sb strings.Builder
	printComparison(&sb, "BENCH_aaaaaaa.json", rows, skipped, 0.20)
	out := sb.String()
	for _, want := range []string{
		"BENCH_aaaaaaa.json", "ns_per_decision", "REGRESSED",
		"sparse_eps_per_sec", "skipped: spmm n=256",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestResolveTol(t *testing.T) {
	if got := resolveTol(0.35, ""); got != 0.35 {
		t.Errorf("flag should win: %v", got)
	}
	if got := resolveTol(0, "0.5"); got != 0.5 {
		t.Errorf("env fallback: %v", got)
	}
	if got := resolveTol(0, ""); got != 0.20 {
		t.Errorf("default: %v", got)
	}
	if got := resolveTol(0.1, "0.9"); got != 0.1 {
		t.Errorf("flag beats env: %v", got)
	}
}

// TestComparePrecisionRowsAgainstOldBaseline pins the PR 8 migration path: a
// current run with labeled decide pipeline rows gated against a pre-PR-8
// baseline (unlabeled decide row only) must judge the unlabeled row, skip
// every labeled row without failing, and still trip on a regression of the
// unlabeled row.
func TestComparePrecisionRowsAgainstOldBaseline(t *testing.T) {
	cur := currentReport()
	cur.Decide = append(cur.Decide,
		decideResult{Kind: "cholesky", T: 8, Path: "rebuild", Precision: "float64", NsPerDecision: 620000},
		decideResult{Kind: "cholesky", T: 8, Path: "serving", Precision: "float64", NsPerDecision: 90000},
		decideResult{Kind: "cholesky", T: 8, Path: "serving", Precision: "int8", NsPerDecision: 60000},
	)
	rows, skipped, regressed := compareReports(baselineReport(), cur, 0.20)
	if regressed {
		t.Fatalf("labeled rows against an old baseline tripped the gate: %+v", rows)
	}
	decideRows := 0
	for _, r := range rows {
		if r.Section == "decide" {
			decideRows++
			if r.Config != "cholesky T=8" {
				t.Errorf("labeled row %q judged against unlabeled baseline", r.Config)
			}
		}
	}
	if decideRows != 1 {
		t.Fatalf("want exactly the unlabeled decide row judged, got %d", decideRows)
	}
	joined := strings.Join(skipped, "; ")
	for _, want := range []string{
		"decide cholesky T=8 rebuild/float64: not in baseline",
		"decide cholesky T=8 serving/float64: not in baseline",
		"decide cholesky T=8 serving/int8: not in baseline",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing skip notice %q in %q", want, joined)
		}
	}

	// The unlabeled row must still gate.
	cur.Decide[0].NsPerDecision = 900000
	if _, _, regressed := compareReports(baselineReport(), cur, 0.20); !regressed {
		t.Fatal("unlabeled-row regression masked by labeled rows")
	}
}

// TestComparePrecisionRowsGate: once a baseline carries labeled rows, each
// pipeline gates independently — a regression on the int8 serving row trips
// even when the unlabeled default row improved.
func TestComparePrecisionRowsGate(t *testing.T) {
	base := baselineReport()
	base.Decide = append(base.Decide,
		decideResult{Kind: "cholesky", T: 8, Path: "serving", Precision: "int8", NsPerDecision: 60000})
	cur := currentReport()
	cur.Decide[0].NsPerDecision = 100000 // default row much faster
	cur.Decide = append(cur.Decide,
		decideResult{Kind: "cholesky", T: 8, Path: "serving", Precision: "int8", NsPerDecision: 90000})
	rows, _, regressed := compareReports(base, cur, 0.20)
	if !regressed {
		t.Fatalf("int8 row regression not caught: %+v", rows)
	}
	for _, r := range rows {
		if r.Config == "cholesky T=8 serving/int8" && !r.Regressed {
			t.Errorf("int8 row should be regressed: %+v", r)
		}
		if r.Config == "cholesky T=8" && r.Regressed {
			t.Errorf("improved default row flagged: %+v", r)
		}
	}
}
