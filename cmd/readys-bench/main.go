// readys-bench measures the hot-path performance of this repository and
// writes the results as a JSON snapshot (BENCH_<rev>.json by default), so the
// perf trajectory of the codebase is tracked in-tree alongside the code.
//
// Five groups are reported:
//
//   - spmm: sparse CSR propagation vs the dense n x n baseline at GCN shapes
//     (ns/op and allocs/op via testing.Benchmark),
//   - decide: single scheduling decisions per second through Agent.Forward,
//   - train: training episodes per second on a Cholesky batch, sparse vs the
//     DenseProp ablation and rollout workers 1 vs GOMAXPROCS,
//   - stream: online multi-tenant scheduling throughput — whole Poisson job
//     streams through stream.Run, as wall-clock jobs/sec per policy,
//   - batched: concurrent serving clients at 1/8/64, private policies vs one
//     shared cross-request Batcher, as aggregate decisions/sec.
//
// With -compare BENCH_old.json the run becomes a perf-regression gate: the
// current numbers are diffed against the committed snapshot on config-matched
// rows (spmm by n, decide/train by kind and T, stream by policy and jobs,
// batched by clients and arm — baselines predating a section skip it), a
// per-metric delta table is printed, and the process exits non-zero when any
// key metric — spmm ns/op, ns_per_decision, train eps/sec, or
// stream_jobs_per_sec — regressed beyond the tolerance (-tol, or the
// BENCH_TOL environment variable, default 20%). Rows the baseline lacks are
// reported as skipped, so an old snapshot still gates what it covers.
//
// Usage:
//
//	readys-bench                  # full run, writes BENCH_<rev>.json
//	readys-bench -quick           # smoke run (make bench-smoke)
//	readys-bench -T 8 -out bench.json
//	readys-bench -quick -compare BENCH_b7783c0.json   # make bench-compare
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/nn"
	"readys/internal/platform"
	"readys/internal/rl"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/stream"
	"readys/internal/taskgraph"
	"readys/internal/tensor"
)

type spmmResult struct {
	N            int     `json:"n"`
	Hidden       int     `json:"hidden"`
	NNZ          int     `json:"nnz"`
	SparseNsOp   int64   `json:"sparse_ns_op"`
	DenseNsOp    int64   `json:"dense_ns_op"`
	Speedup      float64 `json:"speedup"`
	SparseAllocs int64   `json:"sparse_allocs_op"`
	DenseAllocs  int64   `json:"dense_allocs_op"`
}

type decideResult struct {
	Kind string `json:"kind"`
	T    int    `json:"T"`
	// Path and Precision identify the decision pipeline of the row: "" (the
	// default policy — incremental state, decision memo, tape forward),
	// "rebuild" (full EncodeFault + tape on every decision, the
	// pre-optimization oracle) or "serving" (the allocation-free engine), with
	// Precision naming the serving tier. Both are omitted from the legacy
	// default row so old snapshots keep matching it byte for byte.
	Path            string  `json:"path,omitempty"`
	Precision       string  `json:"precision,omitempty"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	NsPerDecision   int64   `json:"ns_per_decision"`
	AllocsPerOp     int64   `json:"allocs_per_decision"`
	BytesPerOp      int64   `json:"bytes_per_decision"`
}

type trainResult struct {
	Kind              string  `json:"kind"`
	T                 int     `json:"T"`
	Episodes          int     `json:"episodes"`
	BatchEpisodes     int     `json:"batch_episodes"`
	SparseEpsPerSec   float64 `json:"sparse_eps_per_sec"`
	DenseEpsPerSec    float64 `json:"dense_eps_per_sec"`
	SparseVsDense     float64 `json:"sparse_vs_dense_speedup"`
	Workers           int     `json:"workers"`
	Workers1EpsPerSec float64 `json:"workers1_eps_per_sec"`
	WorkersNEpsPerSec float64 `json:"workersN_eps_per_sec"`
	WorkersSpeedup    float64 `json:"workers_speedup"`
}

type streamResult struct {
	Policy      string  `json:"policy"`
	Jobs        int     `json:"jobs"`
	Tasks       int     `json:"tasks"`
	JobsPerSec  float64 `json:"stream_jobs_per_sec"`
	TasksPerSec float64 `json:"tasks_per_sec"`
}

type batchedResult struct {
	Kind    string `json:"kind"`
	T       int    `json:"T"`
	Clients int    `json:"clients"`
	// Batched selects the arm: false = each client owns a private serving
	// policy; true = all clients share one core.Batcher (the gateway/serve
	// cross-request batching path) at MaxWidth = clients.
	Batched         bool    `json:"batched"`
	Episodes        int     `json:"episodes"` // per client
	DecisionsPerSec float64 `json:"batched_decisions_per_sec"`
	// MeanBatchWidth is rows forwarded per flush (batched arm only): how much
	// cross-request coalescing actually happened at this client count.
	MeanBatchWidth float64 `json:"mean_batch_width,omitempty"`
}

type report struct {
	Rev        string          `json:"rev"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Generated  string          `json:"generated"`
	Quick      bool            `json:"quick"`
	SpMM       []spmmResult    `json:"spmm"`
	Decide     []decideResult  `json:"decide"`
	Train      []trainResult   `json:"train"`
	Stream     []streamResult  `json:"stream"`
	Batched    []batchedResult `json:"batched,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "", "output path (default BENCH_<rev>.json; with -compare: only written when set)")
		tiles      = flag.Int("T", 8, "Cholesky tile count for the decide and training benchmarks")
		quick      = flag.Bool("quick", false, "smoke mode: tiny sizes, a few episodes (CI)")
		compare    = flag.String("compare", "", "baseline BENCH_*.json to gate against; exit 1 on regression")
		tol        = flag.Float64("tol", 0, "regression tolerance as a fraction (default $BENCH_TOL, else 0.20)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	rev := gitRev()
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rev)
	}

	rep := report{
		Rev:        rev,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Quick:      *quick,
	}

	sizes := []int{128, 256}
	if *quick {
		sizes = []int{128}
	}
	for _, n := range sizes {
		rep.SpMM = append(rep.SpMM, benchSpMM(n, 64))
		fmt.Printf("spmm n=%d: sparse %d ns/op, dense %d ns/op (%.1fx)\n",
			n, rep.SpMM[len(rep.SpMM)-1].SparseNsOp, rep.SpMM[len(rep.SpMM)-1].DenseNsOp,
			rep.SpMM[len(rep.SpMM)-1].Speedup)
	}

	// decide follows -T even in quick mode so a quick gate run produces a row
	// matching the committed full-run baseline (which benches decide at T=8).
	// The unlabeled row is the default policy (incremental + memo since PR 8)
	// and keeps the legacy shape so pre-PR-8 baselines still match it; the
	// labeled rows pin each pipeline explicitly for the gate going forward.
	decT := *tiles
	for _, v := range decideVariants() {
		r := benchDecide(decT, v)
		rep.Decide = append(rep.Decide, r)
		label := "default"
		if v.path != "" {
			label = v.path
			if v.prec != "" {
				label += "/" + v.prec
			}
		}
		fmt.Printf("decide T=%d %s: %.0f decisions/sec (%d ns, %d allocs per decision)\n",
			decT, label, r.DecisionsPerSec, r.NsPerDecision, r.AllocsPerOp)
	}

	trainTs := []int{*tiles}
	if !*quick && *tiles < 16 {
		// Large tiles make window-3 sub-DAGs big enough that propagation
		// dominates the episode cost, which is where sparsity pays off most.
		trainTs = append(trainTs, 16)
	}
	for _, tt := range trainTs {
		tr := benchTrain(tt, *quick)
		rep.Train = append(rep.Train, tr)
		fmt.Printf("train T=%d: sparse %.2f eps/sec vs dense %.2f eps/sec (%.1fx); workers %d: %.2f eps/sec vs 1 worker %.2f eps/sec (%.2fx)\n",
			tr.T, tr.SparseEpsPerSec, tr.DenseEpsPerSec, tr.SparseVsDense,
			tr.Workers, tr.WorkersNEpsPerSec, tr.Workers1EpsPerSec, tr.WorkersSpeedup)
	}

	streamJobs := 20
	if *quick {
		streamJobs = 8
	}
	for _, sr := range benchStream(streamJobs) {
		rep.Stream = append(rep.Stream, sr)
		fmt.Printf("stream %s: %.1f jobs/sec (%.0f tasks/sec, %d jobs of %d tasks)\n",
			sr.Policy, sr.JobsPerSec, sr.TasksPerSec, sr.Jobs, sr.Tasks)
	}

	// batched: concurrent serving clients, private policies vs one shared
	// Batcher, at the client counts the gateway smoke and chaos tests use.
	batchClients := []int{1, 8, 64}
	if *quick {
		batchClients = []int{1, 8}
	}
	for _, nc := range batchClients {
		for _, batched := range []bool{false, true} {
			br := benchBatched(*tiles, nc, *quick, batched)
			rep.Batched = append(rep.Batched, br)
			arm := "unbatched"
			extra := ""
			if batched {
				arm = "batched"
				extra = fmt.Sprintf(", mean width %.1f", br.MeanBatchWidth)
			}
			fmt.Printf("batched T=%d clients=%d %s: %.0f decisions/sec (%d episodes/client%s)\n",
				br.T, br.Clients, arm, br.DecisionsPerSec, br.Episodes, extra)
		}
	}

	// In gate mode the snapshot is only written when -out names a path:
	// the point of -compare is judging against the committed trajectory,
	// not growing a new BENCH_<rev>.json per CI run.
	if *compare == "" || *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if *compare != "" {
		base, err := os.ReadFile(*compare)
		if err != nil {
			log.Fatal(err)
		}
		var old report
		if err := json.Unmarshal(base, &old); err != nil {
			log.Fatalf("%s: %v", *compare, err)
		}
		t := resolveTol(*tol, os.Getenv("BENCH_TOL"))
		rows, skipped, regressed := compareReports(old, rep, t)
		if len(rows) == 0 {
			log.Fatalf("%s: no rows match the current run's configs", *compare)
		}
		fmt.Println()
		printComparison(os.Stdout, *compare, rows, skipped, t)
		if regressed {
			log.Fatalf("perf regression: worst delta %+.1f%% exceeds %.0f%% tolerance", 100*worstDelta(rows), 100*t)
		}
		fmt.Printf("perf gate passed: worst delta %+.1f%% within %.0f%% tolerance\n", 100*worstDelta(rows), 100*t)
	}
}

// resolveTol picks the regression tolerance: the -tol flag when set, else the
// BENCH_TOL environment variable, else 0.20.
func resolveTol(flagTol float64, env string) float64 {
	if flagTol > 0 {
		return flagTol
	}
	if env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
			return v
		}
		log.Fatalf("bad BENCH_TOL %q: want a positive fraction like 0.20", env)
	}
	return 0.20
}

// gitRev returns the short commit hash, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// benchSpMM compares CSR propagation against the dense baseline on a
// DAG-shaped operator (chain plus skip edges, like a factorisation sub-DAG).
func benchSpMM(n, hidden int) spmmResult {
	rng := rand.New(rand.NewSource(1))
	succ := make([][]int, n)
	for i := 0; i+1 < n; i++ {
		succ[i] = append(succ[i], i+1)
		if j := i + 7; j < n {
			succ[i] = append(succ[i], j)
		}
	}
	sp := nn.NormalizedAdjacency(n, succ)
	dn := sp.Dense()
	x := tensor.RandNormal(rng, n, hidden, 1)

	sparseRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		out := tensor.New(n, hidden)
		for i := 0; i < b.N; i++ {
			tensor.SpMMInto(sp, x, out)
		}
	})
	denseRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		out := tensor.New(n, hidden)
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(dn, x, out)
		}
	})
	return spmmResult{
		N:            n,
		Hidden:       hidden,
		NNZ:          sp.NNZ(),
		SparseNsOp:   sparseRes.NsPerOp(),
		DenseNsOp:    denseRes.NsPerOp(),
		Speedup:      float64(denseRes.NsPerOp()) / float64(sparseRes.NsPerOp()),
		SparseAllocs: sparseRes.AllocsPerOp(),
		DenseAllocs:  denseRes.AllocsPerOp(),
	}
}

// decideVariant names one decision pipeline for the decide benchmark.
type decideVariant struct {
	path string // "" (default), "rebuild", "incremental" or "serving"
	prec string // serving precision tier ("" outside the serving path)
	mk   func(agent *core.Agent) *core.Policy
}

// decideVariants enumerates the benched pipelines: the default policy
// (unlabeled legacy row), the full-rebuild oracle, and the serving engine at
// every precision tier. The default row and serving/float64 decide
// bit-identically to rebuild/float64 (see the core equivalence tests) — the
// rows differ only in speed.
func decideVariants() []decideVariant {
	return []decideVariant{
		{"", "", core.NewPolicy},
		{"rebuild", "float64", func(a *core.Agent) *core.Policy {
			p := core.NewPolicy(a)
			p.DisableIncrementalState()
			p.DisableDecisionMemo()
			p.DisableServingEngine()
			return p
		}},
		{"serving", "float64", func(a *core.Agent) *core.Policy { return core.NewServingPolicy(a, core.PrecisionFloat64) }},
		{"serving", "float32", func(a *core.Agent) *core.Policy { return core.NewServingPolicy(a, core.PrecisionFloat32) }},
		{"serving", "int8", func(a *core.Agent) *core.Policy { return core.NewServingPolicy(a, core.PrecisionInt8) }},
	}
}

// benchDecide measures single scheduling decisions on the given pipeline over
// full Cholesky episodes — the serve hot path.
func benchDecide(T int, v decideVariant) decideResult {
	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, T, 2, 2)
	agent := core.NewAgent(spec.AgentConfig())
	problem := spec.Problem()
	pol := v.mk(agent)
	rng := rand.New(rand.NewSource(1))
	if _, err := problem.Simulate(pol, rng); err != nil {
		log.Fatalf("bench decide: %v", err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		r := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			if _, err := problem.Simulate(pol, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Decisions per simulated episode: every task placement is one decision;
	// idle decisions add more, so this undercounts slightly (conservative).
	decisions := len(problem.Graph.Tasks)
	nsPerDecision := res.NsPerOp() / int64(decisions)
	return decideResult{
		Kind:            "cholesky",
		T:               T,
		Path:            v.path,
		Precision:       v.prec,
		DecisionsPerSec: 1e9 / float64(nsPerDecision),
		NsPerDecision:   nsPerDecision,
		AllocsPerOp:     res.AllocsPerOp() / int64(decisions),
		BytesPerOp:      res.AllocedBytesPerOp() / int64(decisions),
	}
}

// benchStream measures online-scheduling throughput: whole Poisson streams
// (mixed Cholesky/LU jobs on 2 CPUs + 2 GPUs) scheduled end to end through
// stream.Run, reported as wall-clock jobs/sec and tasks/sec per policy. The
// READYS row uses a fresh (untrained) default-architecture agent — inference
// cost does not depend on the weights.
func benchStream(jobs int) []streamResult {
	arrivals, err := stream.PoissonProcess{
		Rate: 8, Jobs: jobs,
		Kinds: []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU},
		Sizes: []int{2, 3},
	}.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatalf("bench stream: %v", err)
	}
	tasks := 0
	for _, a := range arrivals {
		tasks += a.Graph().NumTasks()
	}
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
	cases := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"mct", func() sim.Policy { return sched.MCTPolicy{} }},
		{"heft-per-job", func() sim.Policy { return stream.NewHEFTPerJobPolicy() }},
		{"readys", func() sim.Policy { return core.NewPolicy(agent) }},
		// The stream row is GCN-bound, so the reduced serving tier shows up
		// directly in jobs/sec; float64 above is already bit-identical serving.
		{"readys-int8", func() sim.Policy { return core.NewServingPolicy(agent, core.PrecisionInt8) }},
	}
	out := make([]streamResult, 0, len(cases))
	for _, c := range cases {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stream.Run(c.mk(), stream.Config{
					Platform: platform.New(2, 2),
					Arrivals: arrivals,
					Sigma:    0.1,
					Rng:      rand.New(rand.NewSource(2)),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		secPerStream := float64(res.NsPerOp()) / 1e9
		out = append(out, streamResult{
			Policy:      c.name,
			Jobs:        jobs,
			Tasks:       tasks,
			JobsPerSec:  float64(jobs) / secPerStream,
			TasksPerSec: float64(tasks) / secPerStream,
		})
	}
	return out
}

// benchBatched measures concurrent serving throughput at a given client
// count: nc goroutines each running full Cholesky episodes through a
// float64 serving policy, either privately (batched=false) or all sharing one
// core.Batcher at MaxWidth = nc (batched=true) — the exact coalescing path
// /v1/schedule requests take through a batch-enabled readys-serve. Reported as
// aggregate wall-clock decisions/sec, best of two runs.
//
// Note the honest caveat: on a single-core box the shared-batcher arm pays
// coordination cost without any parallel-hardware payoff, so batched is
// expected to run at or slightly below unbatched parity here. The row exists
// to (a) prove batching costs ~nothing at width 1, and (b) track the
// coalescing overhead so wins on multi-core/batch-efficient backends are
// measured against a pinned baseline.
func benchBatched(T, nc int, quick, batched bool) batchedResult {
	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, T, 2, 2)
	agent := core.NewAgent(spec.AgentConfig())

	// Keep total work roughly constant across client counts so every row runs
	// for a comparable wall-clock window.
	totalEps := 128
	if quick {
		totalEps = 16
	}
	episodes := totalEps / nc
	if episodes < 1 {
		episodes = 1
	}

	var flushes, rows int64
	var b *core.Batcher
	if batched {
		b = core.NewBatcher(agent, core.PrecisionFloat64, core.BatcherConfig{
			MaxWidth: nc,
			// Generous dwell: flushing is driven by the pending >= attached
			// co-scheduling rule, the timer is only a straggler safety net.
			Dwell: 5 * time.Millisecond,
			OnFlush: func(w int) {
				atomic.AddInt64(&flushes, 1)
				atomic.AddInt64(&rows, int64(w))
			},
		})
	}

	run := func(eps int) (decisions int64, elapsed time.Duration) {
		// Attach every client before any rollout starts so the batcher knows
		// the true concurrency from the first decision (the same admission
		// order serve's HTTP handler uses).
		if batched {
			for i := 0; i < nc; i++ {
				b.Attach()
			}
		}
		var wg sync.WaitGroup
		var total int64
		start := time.Now()
		for c := 0; c < nc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if batched {
					defer b.Detach()
				}
				problem := spec.Problem()
				pol := core.NewServingPolicy(agent, core.PrecisionFloat64)
				if batched {
					pol.UseBatcher(b)
				}
				rng := rand.New(rand.NewSource(int64(1000 + c)))
				for e := 0; e < eps; e++ {
					res, err := problem.Simulate(pol, rng)
					if err != nil {
						log.Fatalf("bench batched: %v", err)
					}
					atomic.AddInt64(&total, int64(res.Decisions+res.IdleDecisions))
				}
			}(c)
		}
		wg.Wait()
		return total, time.Since(start)
	}

	run(1) // warm-up: fault code paths, fill pools
	atomic.StoreInt64(&flushes, 0)
	atomic.StoreInt64(&rows, 0)

	// best-of-2, same rationale as benchTrain.
	best := 0.0
	for i := 0; i < 2; i++ {
		d, el := run(episodes)
		if dps := float64(d) / el.Seconds(); dps > best {
			best = dps
		}
	}
	res := batchedResult{
		Kind:            "cholesky",
		T:               T,
		Clients:         nc,
		Batched:         batched,
		Episodes:        episodes,
		DecisionsPerSec: best,
	}
	if batched && flushes > 0 {
		res.MeanBatchWidth = float64(rows) / float64(flushes)
	}
	return res
}

// benchTrain measures training throughput (episodes/sec) on Cholesky T with
// the default agent spec: the sparse hot path vs the DenseProp ablation, and
// rollout workers 1 vs GOMAXPROCS.
func benchTrain(T int, quick bool) trainResult {
	episodes := 24
	if T >= 12 {
		episodes = 8 // episodes get much longer with T; 8 is ≥2 full batches
	}
	if quick {
		episodes = 8
	}
	cfg := rl.DefaultConfig()
	cfg.Seed = 1

	// Window 3 / Layers 3 / Hidden 64 sits at the top of the paper's search
	// space (w ∈ [0, 3], g ≥ w) and makes GCN propagation the dominant episode
	// cost, which is what this benchmark isolates.
	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, T, 2, 2)
	spec.Window, spec.Layers, spec.Hidden = 3, 3, 64

	run := func(dense bool, workers, eps int) float64 {
		acfg := spec.AgentConfig()
		acfg.DenseProp = dense
		agent := core.NewAgent(acfg)
		c := cfg
		c.Episodes = eps
		c.RolloutWorkers = workers
		tr := rl.NewTrainer(agent, spec.Problem(), c)
		start := time.Now()
		if _, err := tr.Run(nil); err != nil {
			log.Fatalf("bench train: %v", err)
		}
		return float64(eps) / time.Since(start).Seconds()
	}

	// best-of-2 throughput: run-to-run variance (GC pacing, CPU frequency)
	// easily reaches tens of percent at these durations, and the max of two
	// runs is the standard low-noise estimator for a throughput benchmark.
	best := func(dense bool, workers int) float64 {
		a := run(dense, workers, episodes)
		if b := run(dense, workers, episodes); b > a {
			return b
		}
		return a
	}

	// Untimed warm-up: faults in the code paths, fills the buffer pools, and
	// lets CPU frequency settle so the first timed run is not penalised.
	run(false, 1, cfg.BatchEpisodes)

	sparseEps := best(false, 1)
	denseEps := best(true, 1)
	workers := runtime.GOMAXPROCS(0)
	workersN := best(false, workers)
	return trainResult{
		Kind:              "cholesky",
		T:                 T,
		Episodes:          episodes,
		BatchEpisodes:     cfg.BatchEpisodes,
		SparseEpsPerSec:   sparseEps,
		DenseEpsPerSec:    denseEps,
		SparseVsDense:     sparseEps / denseEps,
		Workers:           workers,
		Workers1EpsPerSec: sparseEps,
		WorkersNEpsPerSec: workersN,
		WorkersSpeedup:    workersN / sparseEps,
	}
}
