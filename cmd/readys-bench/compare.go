package main

import (
	"fmt"
	"io"
	"math"
)

// The perf-regression gate: readys-bench -compare BENCH_old.json diffs the
// current run against a committed trajectory snapshot and fails (exit 1) when
// a key metric regressed beyond the tolerance. Only config-matched rows are
// compared — spmm by matrix size, decide/train by (kind, T), stream by
// (policy, jobs), batched by (clients, arm) — and every unmatched row is
// printed as skipped rather than silently dropped, so a baseline that
// predates a section (e.g. stream or batched) still gates everything it does
// cover.

// keyMetrics defines what "regressed" means per section: the one
// judgement metric of each row and its direction.
type metricDelta struct {
	Section string  // spmm | decide | train | stream | batched
	Config  string  // row identity, e.g. "n=128" or "cholesky T=8"
	Metric  string  // JSON field name of the judged metric
	Old     float64 // baseline value
	New     float64 // current value
	// Delta is the signed fractional change in the direction of harm:
	// positive always means worse, whatever the metric's polarity.
	Delta     float64
	Regressed bool
}

// harmDelta returns the fractional change of new vs old oriented so that
// positive = worse. lowerBetter metrics (latencies) worsen as they grow;
// higherBetter metrics (throughputs) worsen as they shrink.
func harmDelta(old, new float64, lowerBetter bool) float64 {
	if old == 0 {
		return 0
	}
	d := (new - old) / old
	if !lowerBetter {
		d = -d
	}
	return d
}

// compareReports matches rows between the baseline and the current report and
// judges each matched key metric against tol (a fraction, e.g. 0.20). It
// returns the judged deltas, descriptions of every unmatched row, and whether
// anything regressed.
func compareReports(old, cur report, tol float64) (rows []metricDelta, skipped []string, regressed bool) {
	judge := func(section, config, metric string, o, n float64, lowerBetter bool) {
		d := harmDelta(o, n, lowerBetter)
		r := d > tol
		rows = append(rows, metricDelta{
			Section: section, Config: config, Metric: metric,
			Old: o, New: n, Delta: d, Regressed: r,
		})
		regressed = regressed || r
	}

	// spmm by matrix size: the CSR hot path's ns/op.
	oldSp := make(map[int]spmmResult, len(old.SpMM))
	for _, r := range old.SpMM {
		oldSp[r.N] = r
	}
	matchedSp := make(map[int]bool)
	for _, c := range cur.SpMM {
		o, ok := oldSp[c.N]
		if !ok {
			skipped = append(skipped, fmt.Sprintf("spmm n=%d: not in baseline", c.N))
			continue
		}
		matchedSp[c.N] = true
		judge("spmm", fmt.Sprintf("n=%d", c.N), "sparse_ns_op", float64(o.SparseNsOp), float64(c.SparseNsOp), true)
	}
	for _, o := range old.SpMM {
		if !matchedSp[o.N] {
			skipped = append(skipped, fmt.Sprintf("spmm n=%d: not in current run", o.N))
		}
	}

	// decide by (kind, T, path, precision): ns per decision of each decision
	// pipeline. Pre-PR-8 baselines carry only the unlabeled (path="",
	// precision="") row, so the labeled pipeline rows of a current run are
	// skipped against them rather than failing the gate; once a snapshot with
	// labeled rows is committed, every pipeline gates independently.
	type dk struct {
		kind            string
		t               int
		path, precision string
	}
	decCfg := func(k dk) string {
		s := fmt.Sprintf("%s T=%d", k.kind, k.t)
		if k.path != "" {
			s += " " + k.path
			if k.precision != "" {
				s += "/" + k.precision
			}
		}
		return s
	}
	oldDec := make(map[dk]decideResult, len(old.Decide))
	for _, r := range old.Decide {
		oldDec[dk{r.Kind, r.T, r.Path, r.Precision}] = r
	}
	matchedDec := make(map[dk]bool)
	for _, c := range cur.Decide {
		k := dk{c.Kind, c.T, c.Path, c.Precision}
		o, ok := oldDec[k]
		if !ok {
			skipped = append(skipped, fmt.Sprintf("decide %s: not in baseline", decCfg(k)))
			continue
		}
		matchedDec[k] = true
		judge("decide", decCfg(k), "ns_per_decision", float64(o.NsPerDecision), float64(c.NsPerDecision), true)
	}
	for _, o := range old.Decide {
		if k := (dk{o.Kind, o.T, o.Path, o.Precision}); !matchedDec[k] {
			skipped = append(skipped, fmt.Sprintf("decide %s: not in current run", decCfg(k)))
		}
	}

	// train by (kind, T): sparse training throughput.
	type tk struct {
		kind string
		t    int
	}
	oldTr := make(map[tk]trainResult, len(old.Train))
	for _, r := range old.Train {
		oldTr[tk{r.Kind, r.T}] = r
	}
	matchedTr := make(map[tk]bool)
	for _, c := range cur.Train {
		k := tk{c.Kind, c.T}
		o, ok := oldTr[k]
		if !ok {
			skipped = append(skipped, fmt.Sprintf("train %s T=%d: not in baseline", c.Kind, c.T))
			continue
		}
		matchedTr[k] = true
		judge("train", fmt.Sprintf("%s T=%d", c.Kind, c.T), "sparse_eps_per_sec", o.SparseEpsPerSec, c.SparseEpsPerSec, false)
	}
	for _, o := range old.Train {
		if !matchedTr[tk{o.Kind, o.T}] {
			skipped = append(skipped, fmt.Sprintf("train %s T=%d: not in current run", o.Kind, o.T))
		}
	}

	// stream by (policy, jobs): end-to-end scheduling throughput.
	type sk struct {
		policy string
		jobs   int
	}
	oldSt := make(map[sk]streamResult, len(old.Stream))
	for _, r := range old.Stream {
		oldSt[sk{r.Policy, r.Jobs}] = r
	}
	matchedSt := make(map[sk]bool)
	for _, c := range cur.Stream {
		k := sk{c.Policy, c.Jobs}
		o, ok := oldSt[k]
		if !ok {
			skipped = append(skipped, fmt.Sprintf("stream %s jobs=%d: not in baseline", c.Policy, c.Jobs))
			continue
		}
		matchedSt[k] = true
		judge("stream", fmt.Sprintf("%s jobs=%d", c.Policy, c.Jobs), "stream_jobs_per_sec", o.JobsPerSec, c.JobsPerSec, false)
	}
	for _, o := range old.Stream {
		if !matchedSt[sk{o.Policy, o.Jobs}] {
			skipped = append(skipped, fmt.Sprintf("stream %s jobs=%d: not in current run", o.Policy, o.Jobs))
		}
	}

	// batched by (clients, arm): concurrent serving throughput. Baselines
	// that predate the section (pre-gateway snapshots) have no batched rows,
	// so every current row is skipped against them rather than failing.
	type bk struct {
		clients int
		batched bool
	}
	batchCfg := func(k bk) string {
		arm := "unbatched"
		if k.batched {
			arm = "batched"
		}
		return fmt.Sprintf("clients=%d %s", k.clients, arm)
	}
	oldBa := make(map[bk]batchedResult, len(old.Batched))
	for _, r := range old.Batched {
		oldBa[bk{r.Clients, r.Batched}] = r
	}
	matchedBa := make(map[bk]bool)
	for _, c := range cur.Batched {
		k := bk{c.Clients, c.Batched}
		o, ok := oldBa[k]
		if !ok {
			skipped = append(skipped, fmt.Sprintf("batched %s: not in baseline", batchCfg(k)))
			continue
		}
		matchedBa[k] = true
		judge("batched", batchCfg(k), "batched_decisions_per_sec", o.DecisionsPerSec, c.DecisionsPerSec, false)
	}
	for _, o := range old.Batched {
		if k := (bk{o.Clients, o.Batched}); !matchedBa[k] {
			skipped = append(skipped, fmt.Sprintf("batched %s: not in current run", batchCfg(k)))
		}
	}
	return rows, skipped, regressed
}

// printComparison renders the delta table. Delta is printed in the direction
// of harm (positive = worse), so "+25.0% REGRESSED" reads the same way for a
// latency that grew and a throughput that shrank.
func printComparison(w io.Writer, baseline string, rows []metricDelta, skipped []string, tol float64) {
	fmt.Fprintf(w, "comparing against %s (tolerance %.0f%%)\n", baseline, 100*tol)
	fmt.Fprintf(w, "%-7s %-28s %-20s %12s %12s %9s  %s\n",
		"section", "config", "metric", "old", "new", "delta", "status")
	for _, r := range rows {
		status := "ok"
		if r.Regressed {
			status = "REGRESSED"
		} else if r.Delta < -0.001 {
			status = "improved"
		}
		fmt.Fprintf(w, "%-7s %-28s %-20s %12.4g %12.4g %+8.1f%%  %s\n",
			r.Section, r.Config, r.Metric, r.Old, r.New, 100*r.Delta, status)
	}
	for _, s := range skipped {
		fmt.Fprintf(w, "skipped: %s\n", s)
	}
}

// worstDelta returns the largest harm-direction delta (0 for no rows).
func worstDelta(rows []metricDelta) float64 {
	worst := math.Inf(-1)
	for _, r := range rows {
		if r.Delta > worst {
			worst = r.Delta
		}
	}
	if math.IsInf(worst, -1) {
		return 0
	}
	return worst
}
