// readys-obs-check validates observability artifacts: structured-telemetry
// JSONL files (readys-train -telemetry) and Chrome trace-event JSON files
// (readys-sim -trace, serve's /debug/trace). It exits non-zero when a file is
// missing, empty, or malformed, so `make obs-smoke` can assert the pipeline
// end to end.
//
// Usage:
//
//	readys-obs-check -jsonl train.jsonl -trace trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"readys/internal/obs"
)

func main() {
	var (
		jsonlPath = flag.String("jsonl", "", "JSONL telemetry file to validate")
		tracePath = flag.String("trace", "", "Chrome trace-event JSON file to validate")
	)
	flag.Parse()
	if *jsonlPath == "" && *tracePath == "" {
		log.Fatal("nothing to check: pass -jsonl and/or -trace")
	}

	if *jsonlPath != "" {
		data, err := os.ReadFile(*jsonlPath)
		if err != nil {
			log.Fatal(err)
		}
		lines, err := obs.DecodeJSONLines(data)
		if err != nil {
			log.Fatalf("%s: %v", *jsonlPath, err)
		}
		if len(lines) == 0 {
			log.Fatalf("%s: no telemetry records", *jsonlPath)
		}
		var last map[string]any
		if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
			log.Fatalf("%s: final record: %v", *jsonlPath, err)
		}
		fmt.Printf("%s: %d records, final %v\n", *jsonlPath, len(lines), last)
	}

	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			log.Fatalf("%s: %v", *tracePath, err)
		}
		fmt.Printf("%s: valid Chrome trace (%d bytes)\n", *tracePath, len(data))
	}
}
