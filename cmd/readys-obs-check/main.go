// readys-obs-check validates observability artifacts: structured-telemetry
// JSONL files (readys-train -telemetry) and Chrome trace-event JSON files
// (readys-sim -trace, serve's /debug/trace). It exits non-zero when a file is
// missing, empty, or malformed, so `make obs-smoke` can assert the pipeline
// end to end.
//
// Traces from fault-injecting runs (readys-sim -faults) carry extra spans in
// the "fault" category — "outage" and "dead" slices plus "death", "degrade"
// and "kill" instants — which are counted in the summary and validate like
// any other span.
//
// Usage:
//
//	readys-obs-check -jsonl train.jsonl -trace trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"readys/internal/obs"
)

func main() {
	var (
		jsonlPath = flag.String("jsonl", "", "JSONL telemetry file to validate")
		tracePath = flag.String("trace", "", "Chrome trace-event JSON file to validate")
	)
	flag.Parse()
	if *jsonlPath == "" && *tracePath == "" {
		log.Fatal("nothing to check: pass -jsonl and/or -trace")
	}

	if *jsonlPath != "" {
		data, err := os.ReadFile(*jsonlPath)
		if err != nil {
			log.Fatal(err)
		}
		lines, err := obs.DecodeJSONLines(data)
		if err != nil {
			log.Fatalf("%s: %v", *jsonlPath, err)
		}
		if len(lines) == 0 {
			log.Fatalf("%s: no telemetry records", *jsonlPath)
		}
		var last map[string]any
		if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
			log.Fatalf("%s: final record: %v", *jsonlPath, err)
		}
		fmt.Printf("%s: %d records, final %v\n", *jsonlPath, len(lines), last)
	}

	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			log.Fatalf("%s: %v", *tracePath, err)
		}
		outages, kills := countFaultSpans(data)
		if outages+kills > 0 {
			fmt.Printf("%s: valid Chrome trace (%d bytes, %d outage spans, %d kill events)\n",
				*tracePath, len(data), outages, kills)
		} else {
			fmt.Printf("%s: valid Chrome trace (%d bytes)\n", *tracePath, len(data))
		}
	}
}

// countFaultSpans tallies the fault-category events a fault-injecting
// simulation emits: "outage" slices and "kill" instants. Zero for fault-free
// traces. Decode errors are ignored — ValidateChromeTrace already accepted
// the file, so the count is best-effort reporting, not validation.
func countFaultSpans(data []byte) (outages, kills int) {
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, 0
	}
	for _, e := range doc.TraceEvents {
		if e.Cat != "fault" {
			continue
		}
		switch e.Name {
		case "outage":
			outages++
		case "kill":
			kills++
		}
	}
	return outages, kills
}
