// readys-obs-check validates observability artifacts: structured-telemetry
// JSONL files (readys-train -telemetry) and Chrome trace-event JSON files
// (readys-sim -trace, serve's /debug/trace). It exits non-zero when a file is
// missing, empty, or malformed, so `make obs-smoke` can assert the pipeline
// end to end.
//
// Traces from fault-injecting runs (readys-sim -faults) carry extra spans in
// the "fault" category — "outage" and "dead" slices plus "death", "degrade"
// and "kill" instants — which are counted in the summary and validate like
// any other span.
//
// Obs phase 2 adds three more surfaces. -merge joins per-process trace
// exports (dispatcher + worker, client + serve) into one document whose pid
// lanes are disjoint and whose spans stitch by trace ID; -links additionally
// checks that every parent_span_id resolves within its trace and that at
// least one link crosses a process boundary in multi-process traces. -flight
// summarizes (or, with -flight-kind/-flight-from/-flight-to, queries) a
// cluster flight-recorder JSONL export from readys-stream -flight.
//
// Usage:
//
//	readys-obs-check -jsonl train.jsonl -trace trace.json
//	readys-obs-check -merge merged.json dispatcher.json worker.json
//	readys-obs-check -trace merged.json -links
//	readys-obs-check -flight stream-flight.jsonl [-flight-kind kill] [-flight-from 0 -flight-to 5000]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"readys/internal/obs"
)

func main() {
	var (
		jsonlPath  = flag.String("jsonl", "", "JSONL telemetry file to validate")
		tracePath  = flag.String("trace", "", "Chrome trace-event JSON file to validate")
		links      = flag.Bool("links", false, "with -trace: also validate distributed-trace parent links")
		mergeOut   = flag.String("merge", "", "merge the trace files given as positional args into this output, then validate it")
		flightPath = flag.String("flight", "", "flight-recorder JSONL file to summarize")
		flightKind = flag.String("flight-kind", "", "with -flight: only count events of this kind")
		flightFrom = flag.Float64("flight-from", 0, "with -flight: ignore events before this simulated time")
		flightTo   = flag.Float64("flight-to", 0, "with -flight: ignore events after this simulated time (0 = unbounded)")
	)
	flag.Parse()
	if *jsonlPath == "" && *tracePath == "" && *mergeOut == "" && *flightPath == "" {
		log.Fatal("nothing to check: pass -jsonl, -trace, -merge and/or -flight")
	}

	if *mergeOut != "" {
		inputs := flag.Args()
		if len(inputs) < 2 {
			log.Fatal("-merge needs at least two input trace files as positional arguments")
		}
		docs := make([][]byte, len(inputs))
		for i, p := range inputs {
			data, err := os.ReadFile(p)
			if err != nil {
				log.Fatal(err)
			}
			docs[i] = data
		}
		merged, err := obs.MergeTraces(docs...)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.ValidateChromeTrace(merged); err != nil {
			log.Fatalf("merged trace invalid: %v", err)
		}
		if err := os.WriteFile(*mergeOut, merged, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: merged %d traces (%d bytes)\n", *mergeOut, len(inputs), len(merged))
	}

	if *jsonlPath != "" {
		data, err := os.ReadFile(*jsonlPath)
		if err != nil {
			log.Fatal(err)
		}
		lines, err := obs.DecodeJSONLines(data)
		if err != nil {
			log.Fatalf("%s: %v", *jsonlPath, err)
		}
		if len(lines) == 0 {
			log.Fatalf("%s: no telemetry records", *jsonlPath)
		}
		var last map[string]any
		if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
			log.Fatalf("%s: final record: %v", *jsonlPath, err)
		}
		fmt.Printf("%s: %d records, final %v\n", *jsonlPath, len(lines), last)
	}

	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			log.Fatalf("%s: %v", *tracePath, err)
		}
		if *links {
			if err := obs.ValidateTraceLinks(data); err != nil {
				log.Fatalf("%s: %v", *tracePath, err)
			}
		}
		outages, kills := countFaultSpans(data)
		switch {
		case *links:
			fmt.Printf("%s: valid Chrome trace, parent links resolve (%d bytes)\n", *tracePath, len(data))
		case outages+kills > 0:
			fmt.Printf("%s: valid Chrome trace (%d bytes, %d outage spans, %d kill events)\n",
				*tracePath, len(data), outages, kills)
		default:
			fmt.Printf("%s: valid Chrome trace (%d bytes)\n", *tracePath, len(data))
		}
	}

	if *flightPath != "" {
		f, err := os.Open(*flightPath)
		if err != nil {
			log.Fatal(err)
		}
		events, err := obs.ReadFlightEvents(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *flightPath, err)
		}
		if len(events) == 0 {
			log.Fatalf("%s: no flight events", *flightPath)
		}
		events = obs.FilterFlight(events, *flightKind, *flightFrom, *flightTo)
		fmt.Printf("%s: %s\n", *flightPath, obs.FormatFlightSummary(obs.SummarizeFlight(events)))
	}
}

// countFaultSpans tallies the fault-category events a fault-injecting
// simulation emits: "outage" slices and "kill" instants. Zero for fault-free
// traces. Decode errors are ignored — ValidateChromeTrace already accepted
// the file, so the count is best-effort reporting, not validation.
func countFaultSpans(data []byte) (outages, kills int) {
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, 0
	}
	for _, e := range doc.TraceEvents {
		if e.Cat != "fault" {
			continue
		}
		switch e.Name {
		case "outage":
			outages++
		case "kill":
			kills++
		}
	}
	return outages, kills
}
