// readys-eval loads a trained READYS checkpoint and compares it with the HEFT
// and MCT baselines across the noise sweep on a chosen problem, or — with
// -faults — against HEFT, re-planning HEFT and MCT across a fault-rate sweep
// (the resilience benchmark).
//
// Usage:
//
//	readys-eval -kind cholesky -T 8 -cpus 2 -gpus 2 -models models
//	readys-eval -kind cholesky -train-T 8 -T 12 -cpus 4 -gpus 0   # transfer
//	readys-eval -kind cholesky -T 8 -faults -rates 0,0.5,1,2      # resilience
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"readys/internal/exp"
	"readys/internal/taskgraph"
)

func parseFloats(raw string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(raw, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		kindStr = flag.String("kind", "cholesky", "DAG family: cholesky, lu or qr")
		tiles   = flag.Int("T", 8, "tile count of the evaluation DAG")
		trainT  = flag.Int("train-T", 0, "tile count the agent was trained on (default: same as -T)")
		cpus    = flag.Int("cpus", 2, "number of CPUs")
		gpus    = flag.Int("gpus", 2, "number of GPUs")
		models  = flag.String("models", exp.DefaultModelsDir(), "model directory")
		runs    = flag.Int("runs", exp.EvalRuns, "runs per σ point")
		seed    = flag.Int64("seed", 42, "evaluation seed")
		sigmas  = flag.String("sigmas", "", "comma-separated σ values (default: the standard sweep)")
		faults  = flag.Bool("faults", false, "run the resilience benchmark (fault-rate sweep) instead of the σ sweep")
		rates   = flag.String("rates", "", "comma-separated fault rates for -faults (default: 0,0.5,1,2)")
		sigma   = flag.Float64("sigma", 0.1, "duration noise during the -faults sweep")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	kind, err := taskgraph.KindFromString(*kindStr)
	if err != nil {
		log.Fatal(err)
	}
	tt := *trainT
	if tt == 0 {
		tt = *tiles
	}
	spec := exp.DefaultAgentSpec(kind, tt, *cpus, *gpus)
	agent, err := exp.LoadAgent(spec, *models)
	if err != nil {
		log.Fatalf("loading %s: %v (train it with readys-train)", spec.ModelPath(*models), err)
	}

	var tab *exp.Table
	if *faults {
		sweep := exp.FaultRates
		if *rates != "" {
			if sweep, err = parseFloats(*rates); err != nil {
				log.Fatal(err)
			}
		}
		pts := exp.ResilienceSweep(agent, kind, *tiles, *cpus, *gpus, *sigma, sweep, *runs, *seed)
		tab = exp.ResilienceTable(pts, kind, *tiles, *cpus, *gpus, *sigma)
	} else {
		sweep := exp.Sigmas
		if *sigmas != "" {
			if sweep, err = parseFloats(*sigmas); err != nil {
				log.Fatal(err)
			}
		}
		tab = &exp.Table{
			Title:  fmt.Sprintf("READYS (trained T=%d) vs HEFT/MCT on %s T=%d, %dCPU+%dGPU", tt, kind, *tiles, *cpus, *gpus),
			Header: []string{"sigma", "readys_ms", "heft_ms", "mct_ms", "improve_vs_heft", "improve_vs_mct"},
		}
		for _, pt := range exp.Compare(agent, kind, *tiles, *cpus, *gpus, sweep, *runs, *seed) {
			tab.AddRow(exp.F(pt.Sigma), exp.F(pt.READYS.Mean), exp.F(pt.HEFT.Mean), exp.F(pt.MCT.Mean),
				exp.F(pt.ImproveHEFT), exp.F(pt.ImproveMCT))
		}
	}
	if *csv {
		fmt.Fprint(os.Stdout, tab.CSV())
	} else {
		fmt.Fprint(os.Stdout, tab.Text())
	}
}
