// readys-train trains a READYS agent on one (kernel, size, platform)
// combination and saves its checkpoint, or — with -all — trains every agent
// the paper's figures need.
//
// Usage:
//
//	readys-train -kind cholesky -T 8 -cpus 2 -gpus 2 -episodes 2500 -out models
//	readys-train -all -out models
//	readys-train -stream -episodes 600 -out models
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"readys/internal/exp"
	"readys/internal/obs"
	"readys/internal/rl"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func main() {
	var (
		kindStr   = flag.String("kind", "cholesky", "DAG family: cholesky, lu or qr")
		tiles     = flag.Int("T", 4, "tile count per matrix dimension")
		cpus      = flag.Int("cpus", 2, "number of CPUs")
		gpus      = flag.Int("gpus", 2, "number of GPUs")
		episodes  = flag.Int("episodes", 0, "training episodes (0 = size-scaled default)")
		out       = flag.String("out", exp.DefaultModelsDir(), "model output directory")
		all       = flag.Bool("all", false, "train every agent needed by the paper's figures")
		streaming = flag.Bool("stream", false, "train on streaming job arrivals (mixed-family Poisson streams; see exp.TrainStreamAgent)")
		window    = flag.Int("window", 2, "sub-DAG window depth w")
		layers    = flag.Int("layers", 2, "number of GCN layers g")
		hidden    = flag.Int("hidden", 32, "embedding width")
		seed      = flag.Int64("seed", 1, "training seed")
		quiet     = flag.Bool("quiet", false, "suppress per-interval progress")
		telemetry = flag.String("telemetry", "", "write per-episode training stats as JSON lines to this file (with -all, one file per agent named after it)")
		workers   = flag.Int("workers", 0, "concurrent episode rollouts per batch (0 = GOMAXPROCS); results are identical at any value")
		faultRate = flag.Float64("fault-rate", 0, "train under per-episode fault injection at this rate (0 = fault-free; see sim.SpecForRate)")
	)
	flag.Parse()

	if *all {
		if err := trainAll(*out, *quiet, *telemetry, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *streaming {
		eps := *episodes
		if eps == 0 {
			eps = exp.StreamTrainEpisodes
		}
		if err := trainStream(*out, eps, *quiet, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}

	kind, err := taskgraph.KindFromString(*kindStr)
	if err != nil {
		log.Fatal(err)
	}
	spec := exp.DefaultAgentSpec(kind, *tiles, *cpus, *gpus)
	spec.Window, spec.Layers, spec.Hidden, spec.Seed = *window, *layers, *hidden, *seed
	eps := *episodes
	if eps == 0 {
		eps = exp.EpisodesFor(kind, *tiles)
	}
	if err := trainOne(spec, *out, eps, *quiet, *telemetry, *workers, *faultRate); err != nil {
		log.Fatal(err)
	}
}

func trainOne(spec exp.AgentSpec, dir string, episodes int, quiet bool, telemetryPath string, workers int, faultRate float64) error {
	if _, err := os.Stat(spec.ModelPath(dir)); err == nil {
		fmt.Printf("%s: checkpoint exists, skipping\n", spec.Name())
		return nil
	}
	fmt.Printf("training %s for %d episodes...\n", spec.Name(), episodes)
	start := time.Now()
	interval := episodes / 10
	if interval == 0 {
		interval = 1
	}
	opt := exp.TrainOptions{
		Episodes: episodes,
		Workers:  workers,
		// Horizon 0: each episode defaults it to a multiple of the problem's
		// HEFT projection (see core.Problem.FaultPlanFor).
		Faults: sim.SpecForRate(faultRate, 0),
		Progress: func(st rl.EpisodeStats) {
			if !quiet && st.Episode%interval == 0 {
				fmt.Printf("  ep %5d  reward %+.3f  makespan %8.1f  entropy %.3f\n",
					st.Episode, st.Reward, st.Makespan, st.Entropy)
			}
		},
	}
	if telemetryPath != "" {
		sink, err := obs.CreateJSONL(telemetryPath)
		if err != nil {
			return err
		}
		defer sink.Close()
		opt.Telemetry = sink
	}
	_, hist, err := exp.TrainAgentWith(spec, dir, opt)
	if err != nil {
		return err
	}
	if opt.Telemetry != nil {
		if err := opt.Telemetry.Flush(); err != nil {
			return err
		}
		fmt.Printf("  telemetry → %s\n", telemetryPath)
	}
	fmt.Printf("done in %s: HEFT baseline %.1f, final mean reward %+.3f → %s\n",
		time.Since(start).Round(time.Second), hist.BaselineMakespan,
		hist.FinalMeanReward(100), spec.ModelPath(dir))
	return nil
}

// trainStream trains the stream benchmark's agent on Poisson arrival streams
// and saves it under exp.StreamAgentPath(dir). Existing checkpoints are
// skipped, matching trainOne.
func trainStream(dir string, episodes int, quiet bool, workers int) error {
	if _, err := os.Stat(exp.StreamAgentPath(dir)); err == nil {
		fmt.Printf("%s: checkpoint exists, skipping\n", exp.StreamAgentPath(dir))
		return nil
	}
	fmt.Printf("training stream agent for %d episodes...\n", episodes)
	start := time.Now()
	interval := episodes / 10
	if interval == 0 {
		interval = 1
	}
	_, hist, err := exp.TrainStreamAgent(dir, episodes, workers, func(st rl.EpisodeStats) {
		if !quiet && st.Episode%interval == 0 {
			fmt.Printf("  ep %5d  reward %+.3f  stream makespan %8.1f  entropy %.3f\n",
				st.Episode, st.Reward, st.Makespan, st.Entropy)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("done in %s: final mean reward %+.3f → %s\n",
		time.Since(start).Round(time.Second), hist.FinalMeanReward(100), exp.StreamAgentPath(dir))
	return nil
}

// trainAll trains the agents of Figure 3 (three kernels × T∈{2,4,8} on
// 2 CPUs + 2 GPUs) and of the transfer experiments of Figures 4-6 (Cholesky
// T∈{4,6,8} on 4 CPUs, 2 CPUs + 2 GPUs and 4 GPUs). Existing checkpoints are
// skipped, so the command is resumable.
func trainAll(dir string, quiet bool, telemetryPath string, workers int) error {
	var specs []exp.AgentSpec
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		for _, T := range []int{2, 4, 8} {
			specs = append(specs, exp.DefaultAgentSpec(kind, T, 2, 2))
		}
	}
	for _, plat := range [][2]int{{4, 0}, {2, 2}, {0, 4}} {
		for _, T := range []int{4, 6, 8} {
			specs = append(specs, exp.DefaultAgentSpec(taskgraph.Cholesky, T, plat[0], plat[1]))
		}
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		if seen[spec.Name()] {
			continue
		}
		seen[spec.Name()] = true
		if err := trainOne(spec, dir, exp.EpisodesFor(spec.Kind, spec.T), quiet, perAgentTelemetry(telemetryPath, spec), workers, 0); err != nil {
			return err
		}
	}
	return nil
}

// perAgentTelemetry derives a per-agent JSONL path from the -telemetry flag
// so -all runs don't interleave every agent's stream into one file:
// "runs/train.jsonl" becomes "runs/train_<spec name>.jsonl".
func perAgentTelemetry(path string, spec exp.AgentSpec) string {
	if path == "" {
		return ""
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "_" + spec.Name() + ext
}
