package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/fleet"
	"readys/internal/obs"
	"readys/internal/taskgraph"
)

// runSmoke is `make fleet-smoke`: a real dispatcher on a loopback listener,
// one worker, one tiny train job end-to-end, and the artifact verified —
// digest, loadable checkpoint, decodable history. Everything lives in a
// temp directory and a few seconds.
//
// When traceOut is non-empty, the dispatcher's and the worker's span exports
// are written there and stitched into merged-trace.json via obs.MergeTraces,
// then validated — structure and cross-process parent links — exactly as
// `readys-obs-check -trace merged-trace.json -links` would. This is the
// `make obs-smoke` distributed-tracing leg.
func runSmoke(logger *log.Logger, traceOut string) error {
	tmp, err := os.MkdirTemp("", "readys-fleet-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	cfg := fleet.DefaultConfig()
	cfg.WALPath = filepath.Join(tmp, "queue.wal")
	cfg.ArtifactsDir = filepath.Join(tmp, "artifacts")
	cfg.LeaseTTL = 5 * time.Second
	cfg.Logger = logger
	cfg.Publisher = fleet.DirPublisher{Dir: filepath.Join(tmp, "published")}
	d, err := fleet.NewDispatcher(cfg)
	if err != nil {
		return err
	}
	defer d.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, 2, 1, 1)
	client := fleet.NewClient(base)
	job, _, err := client.Submit(fleet.JobSpec{
		Type:  fleet.JobTrain,
		Train: &fleet.TrainSpec{Agent: spec, Episodes: 5},
	})
	if err != nil {
		return fmt.Errorf("submitting smoke job: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	worker := fleet.NewWorker(fleet.WorkerConfig{
		Dispatcher:   base,
		Name:         "smoke",
		PollInterval: 50 * time.Millisecond,
		ModelsDir:    filepath.Join(tmp, "worker-models"),
		Logger:       logger,
	})
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(ctx) }()

	var finished *fleet.Job
	for finished == nil {
		select {
		case <-ctx.Done():
			return fmt.Errorf("smoke job %s did not finish in time", job.ID)
		case <-time.After(100 * time.Millisecond):
		}
		j, err := client.Job(job.ID)
		if err != nil {
			return err
		}
		switch j.State {
		case fleet.StateDone:
			finished = j
		case fleet.StateFailed:
			return fmt.Errorf("smoke job failed: %s", j.Error)
		}
	}
	cancel()
	if err := <-workerDone; err != nil {
		return fmt.Errorf("worker shutdown: %w", err)
	}

	// Verify the checkpoint artifact: content address, loadability, and the
	// published train → serve copy.
	digest, ok := finished.Artifacts[fleet.ArtifactCheckpoint]
	if !ok {
		return fmt.Errorf("smoke job has no checkpoint artifact")
	}
	data, err := client.GetArtifact(digest) // digest re-verified client-side
	if err != nil {
		return err
	}
	ckpt := filepath.Join(tmp, "smoke-checkpoint.json")
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		return err
	}
	agent := core.NewAgent(spec.AgentConfig())
	if _, err := agent.LoadCheckpoint(ckpt); err != nil {
		return fmt.Errorf("trained checkpoint does not load: %w", err)
	}
	histDigest, ok := finished.Artifacts[fleet.ArtifactHistory]
	if !ok {
		return fmt.Errorf("smoke job has no history artifact")
	}
	hist, err := client.GetArtifact(histDigest)
	if err != nil {
		return err
	}
	lines, err := obs.DecodeJSONLines(hist)
	if err != nil {
		return fmt.Errorf("history artifact is not valid JSONL: %w", err)
	}
	if len(lines) != 5 {
		return fmt.Errorf("history has %d episodes, want 5", len(lines))
	}
	published := filepath.Join(tmp, "published", spec.Name()+".json")
	if _, err := os.Stat(published); err != nil {
		return fmt.Errorf("checkpoint was not published for serving: %w", err)
	}

	if traceOut != "" {
		if err := exportSmokeTraces(logger, d, worker, traceOut); err != nil {
			return err
		}
	}
	logger.Printf("fleet smoke ok: %s done, checkpoint %s… loads, %d history lines, published",
		finished.ID, digest[:12], len(lines))
	return nil
}

// exportSmokeTraces writes both processes' span exports plus their stitched
// merge, and validates the merge the way readys-obs-check -links does: lanes
// balanced and every parent span resolving, with at least one link crossing
// the dispatcher/worker boundary.
func exportSmokeTraces(logger *log.Logger, d *fleet.Dispatcher, worker *fleet.Worker, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var db, wb bytes.Buffer
	if err := d.WriteTrace(&db); err != nil {
		return err
	}
	if err := worker.WriteTrace(&wb); err != nil {
		return err
	}
	dispPath := filepath.Join(dir, "dispatcher.json")
	workPath := filepath.Join(dir, "worker.json")
	if err := os.WriteFile(dispPath, db.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(workPath, wb.Bytes(), 0o644); err != nil {
		return err
	}
	merged, err := obs.MergeTraces(db.Bytes(), wb.Bytes())
	if err != nil {
		return fmt.Errorf("merging dispatcher + worker traces: %w", err)
	}
	if err := obs.ValidateChromeTrace(merged); err != nil {
		return fmt.Errorf("merged trace invalid: %w", err)
	}
	if err := obs.ValidateTraceLinks(merged); err != nil {
		return fmt.Errorf("merged trace links: %w", err)
	}
	mergedPath := filepath.Join(dir, "merged-trace.json")
	if err := os.WriteFile(mergedPath, merged, 0o644); err != nil {
		return err
	}
	logger.Printf("wrote %s + %s, merged and link-validated %s (%d bytes)",
		dispPath, workPath, mergedPath, len(merged))
	return nil
}
