// readys-fleet is the fleet dispatcher daemon: it owns the durable job queue
// (a JSONL write-ahead log replayed on restart), the lease table, and the
// content-addressed artifact store, and serves the fleet HTTP API that
// readys-worker daemons pull jobs from.
//
// Usage:
//
//	readys-fleet -addr :9090 -dir fleet
//	readys-fleet -addr :9090 -dir fleet -publish models      # train → serve loop
//	readys-fleet -grid -dispatcher http://host:9090          # submit the paper grid
//	readys-fleet -smoke                                      # in-process end-to-end check
//
// Endpoints:
//
//	POST /v1/jobs             submit a job (deduped by canonical spec hash)
//	GET  /v1/jobs[/{id}]      inspect the queue
//	POST /v1/workers/register, /v1/workers/deregister
//	POST /v1/lease            pull a job under a time-bounded lease
//	POST /v1/heartbeat        extend the lease, stream training progress
//	POST /v1/complete         finish a job (artifacts already uploaded)
//	POST /v1/fail             report a worker-side failure (requeue + backoff)
//	PUT  /v1/artifacts        upload a blob (content-addressed by SHA-256)
//	GET  /v1/artifacts/{digest}
//	GET  /healthz, /metrics (?format=prometheus), /debug/trace
//
// On SIGINT/SIGTERM the daemon stops accepting connections and closes the
// WAL; running workers requeue via lease expiry on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"readys/internal/fleet"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		dir        = flag.String("dir", "fleet", "dispatcher state directory (WAL + artifacts)")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "lease duration a worker must heartbeat within")
		maxRetries = flag.Int("max-attempts", 3, "lease grants per job before it fails terminally")
		backoff    = flag.Duration("retry-backoff", 2*time.Second, "base requeue delay (doubles per attempt)")
		publish    = flag.String("publish", "", "publish completed training checkpoints into this model directory (the directory readys-serve loads from)")
		grid       = flag.Bool("grid", false, "submit the full paper grid to -dispatcher and exit")
		dispatcher = flag.String("dispatcher", "http://127.0.0.1:9090", "dispatcher URL for -grid")
		smoke      = flag.Bool("smoke", false, "run an in-process dispatcher + worker end-to-end check and exit")
		traceEvs   = flag.Int("trace-events", 0, "request-span ring capacity for /debug/trace (0 = default)")
		traceOut   = flag.String("trace-out", "", "with -smoke: write dispatcher.json, worker.json and the stitched merged-trace.json into this directory")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "readys-fleet: ", log.LstdFlags)

	if *smoke {
		if err := runSmoke(logger, *traceOut); err != nil {
			logger.Fatal(err)
		}
		return
	}
	if *grid {
		submitGrid(logger, *dispatcher)
		return
	}

	cfg := fleet.DefaultConfig()
	cfg.WALPath = filepath.Join(*dir, "queue.wal")
	cfg.ArtifactsDir = filepath.Join(*dir, "artifacts")
	cfg.LeaseTTL = *leaseTTL
	cfg.MaxAttempts = *maxRetries
	cfg.RetryBackoff = *backoff
	cfg.Logger = logger
	cfg.TraceEvents = *traceEvs
	if *publish != "" {
		cfg.Publisher = fleet.DirPublisher{Dir: *publish}
	}

	d, err := fleet.NewDispatcher(cfg)
	if err != nil {
		logger.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: d.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		logger.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		if err := d.Close(); err != nil {
			logger.Printf("closing dispatcher: %v", err)
		}
		close(done)
	}()

	logger.Printf("dispatching on %s (WAL %s, lease TTL %s)", *addr, cfg.WALPath, cfg.LeaseTTL)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	<-done
	logger.Print("queue persisted, bye")
}

// submitGrid posts the full paper grid and reports the dedup split.
func submitGrid(logger *log.Logger, url string) {
	client := fleet.NewClient(url)
	var fresh, deduped int
	for _, spec := range fleet.PaperGrid() {
		job, wasDup, err := client.Submit(spec)
		if err != nil {
			logger.Fatalf("submitting %s job: %v", spec.Type, err)
		}
		if wasDup {
			deduped++
		} else {
			fresh++
		}
		logger.Printf("%s %s (deduped=%v)", job.ID, spec.Type, wasDup)
	}
	logger.Printf("grid submitted: %d new jobs, %d deduplicated", fresh, deduped)
}
