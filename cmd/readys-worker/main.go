// readys-worker is the fleet's execution daemon: it registers with a
// readys-fleet dispatcher, pulls jobs (training runs, evaluation sweeps,
// figure regeneration) under a heartbeated lease, streams per-episode
// progress, and uploads artifacts back to the dispatcher's content-addressed
// store.
//
// Usage:
//
//	readys-worker -dispatcher http://host:9090
//	readys-worker -dispatcher http://host:9090 -name gpu-box-3 -models /shared/models
//
// On SIGINT/SIGTERM the worker drains: the in-flight job runs to completion,
// its artifacts are uploaded and the job completed, then the worker
// deregisters (mirroring readys-serve's drain).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"readys/internal/fleet"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "http://127.0.0.1:9090", "dispatcher URL")
		name       = flag.String("name", "", "worker name (default: hostname)")
		poll       = flag.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts")
		models     = flag.String("models", "fleet-models", "local checkpoint cache (shared with other workers when on a shared filesystem)")
		workers    = flag.Int("workers", 0, "concurrent episode rollouts per training batch (0 = GOMAXPROCS); results are identical at any value")
		traceOut   = flag.String("trace-out", "", "write the worker's execution spans as Chrome trace-event JSON here on shutdown (merge with the dispatcher's /debug/trace via readys-obs-check -merge)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "readys-worker: ", log.LstdFlags)

	w := fleet.NewWorker(fleet.WorkerConfig{
		Dispatcher:     *dispatcher,
		Name:           *name,
		PollInterval:   *poll,
		ModelsDir:      *models,
		RolloutWorkers: *workers,
		Logger:         logger,
	})

	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		logger.Printf("received %s, draining: finishing the in-flight job before exit", sig)
		cancel()
	}()

	if err := w.Run(ctx); err != nil {
		logger.Fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Fatal(err)
		}
		if err := w.WriteTrace(f); err != nil {
			f.Close()
			logger.Fatal(err)
		}
		if err := f.Close(); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("wrote %s", *traceOut)
	}
	logger.Print("drained, bye")
}
