// readys-serve is the online scheduling daemon: it keeps trained READYS
// checkpoints resident and answers scheduling requests over a JSON HTTP API.
//
// Usage:
//
//	readys-serve -addr :8080 -models models
//	readys-serve -addr :8080 -workers 8 -queue 128 -timeout 10s
//
// Endpoints:
//
//	POST /v1/schedule   schedule a DAG (generated family or explicit graph)
//	GET  /v1/models     list checkpoints the registry can serve
//	GET  /healthz       liveness probe
//	GET  /metrics       request counters, latency histograms, cache stats
//	                    (?format=prometheus for text exposition)
//	GET  /debug/trace   request spans as Chrome trace-event JSON
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// queued and in-flight rollouts before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		models      = flag.String("models", exp.DefaultModelsDir(), "checkpoint directory")
		workers     = flag.Int("workers", 0, "rollout workers (default: GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "bounded request-queue capacity")
		maxModels   = flag.Int("max-models", 8, "resident checkpoints before LRU eviction")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		enablePprof = flag.Bool("pprof", false, "expose net/http/pprof and /debug/runtime (off by default)")
		traceEvents = flag.Int("trace-events", 0, "request-span ring capacity for /debug/trace (0 = default)")
		precision   = flag.String("precision", "float64", "serving precision for rollouts: float64 (bit-identical to training-path decisions), float32 or int8")
		batch       = flag.Bool("batch", false, "coalesce concurrent decision steps on one model into row-batched forwards (bit-identical per request at float64)")
		batchWidth  = flag.Int("batch-width", 0, "maximum states per flushed batch (0 = default)")
		batchDwell  = flag.Duration("batch-dwell", 0, "longest a decision waits for batch peers before flushing anyway (0 = default)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "readys-serve: ", log.LstdFlags)

	prec, err := core.ParsePrecision(*precision)
	if err != nil {
		logger.Fatal(err)
	}

	if info, err := os.Stat(*models); err != nil {
		logger.Fatalf("model directory %s: %v", *models, err)
	} else if !info.IsDir() {
		logger.Fatalf("model directory %s: not a directory", *models)
	}

	srv := serve.New(serve.Config{
		ModelsDir:      *models,
		Workers:        *workers,
		Queue:          *queue,
		MaxModels:      *maxModels,
		RequestTimeout: *timeout,
		Logger:         logger,
		EnablePprof:    *enablePprof,
		TraceEvents:    *traceEvents,
		Precision:      prec,
		Batch:          *batch,
		BatchWidth:     *batchWidth,
		BatchDwell:     *batchDwell,
	})
	if prec != core.PrecisionFloat64 {
		logger.Printf("serving precision %s (reduced tier; decisions may diverge within the documented bound)", prec)
	}
	if *batch {
		logger.Print("cross-request batching enabled")
	}
	if *enablePprof {
		logger.Print("pprof enabled at /debug/pprof/")
	}
	if infos, err := srv.Registry().List(); err != nil {
		logger.Fatalf("scanning %s: %v", *models, err)
	} else {
		logger.Printf("serving %d checkpoints from %s", len(infos), *models)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		logger.Printf("received %s, draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting connections first, then drain the rollout pool so
		// every accepted request is answered before exit.
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("pool drain: %v", err)
		}
		close(done)
	}()

	logger.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	<-done
	logger.Print("drained, bye")
}
