// readys-sim runs a single scheduling episode of any scheduler on any problem
// and reports the makespan, per-resource utilisation, the per-kernel
// CPU/GPU placement split and the realised critical chain. The schedule can
// be exported as a Gantt chart (CSV or SVG).
//
// Usage:
//
//	readys-sim -kind cholesky -T 8 -cpus 2 -gpus 2 -policy mct -sigma 0.3
//	readys-sim -policy readys -models models -svg schedule.svg
//	readys-sim -policy heft -comm                # with communication costs
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func main() {
	var (
		kindStr   = flag.String("kind", "cholesky", "DAG family: cholesky, lu, qr, gemm, stencil or forkjoin")
		tiles     = flag.Int("T", 8, "problem size")
		cpus      = flag.Int("cpus", 2, "number of CPUs")
		gpus      = flag.Int("gpus", 2, "number of GPUs")
		sigma     = flag.Float64("sigma", 0.2, "duration noise level σ")
		policy    = flag.String("policy", "mct", "scheduler: readys, heft, replan-heft, mct, minmin, maxmin, rank, fifo, random")
		models    = flag.String("models", exp.DefaultModelsDir(), "model directory (for -policy readys)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		comm      = flag.Bool("comm", false, "enable the PCIe-class communication model")
		csvPath   = flag.String("gantt", "", "write the schedule as Gantt CSV to this path")
		svgPath   = flag.String("svg", "", "write the schedule as an SVG Gantt chart to this path")
		tracePath = flag.String("trace", "", "write the schedule as Chrome trace-event JSON to this path (load in chrome://tracing or ui.perfetto.dev)")
		faults    = flag.Bool("faults", false, "inject faults (outages, deaths, degradation) from a seed-derived plan")
		faultRate = flag.Float64("fault-rate", 1, "fault rate for -faults (events of each kind per resource, see sim.SpecForRate)")
		faultSeed = flag.Int64("fault-seed", 0, "fault-plan seed for -faults (default: derived from -seed)")
	)
	flag.Parse()

	kind, err := taskgraph.KindFromString(*kindStr)
	if err != nil {
		log.Fatal(err)
	}
	g := taskgraph.NewByKind(kind, *tiles)
	plat := platform.New(*cpus, *gpus)
	tt := platform.TimingFor(kind)

	var pol sim.Policy
	switch *policy {
	case "readys":
		spec := exp.DefaultAgentSpec(kind, *tiles, *cpus, *gpus)
		agent, err := exp.LoadAgent(spec, *models)
		if err != nil {
			log.Fatalf("loading %s: %v (train it with readys-train)", spec.ModelPath(*models), err)
		}
		pol = core.NewPolicy(agent)
	case "heft":
		pol = sched.NewStaticPolicy(sched.HEFT(g, plat, tt))
	case "replan-heft":
		pol = sched.NewReplanHEFTPolicy()
	case "mct":
		pol = sched.MCTPolicy{}
	case "minmin":
		pol = sched.MinMinPolicy{}
	case "maxmin":
		pol = sched.MaxMinPolicy{}
	case "rank":
		pol = sched.NewRankPolicy(g, plat, tt)
	case "fifo":
		pol = sched.FIFOPolicy{}
	case "random":
		pol = sched.RandomPolicy{Rng: rand.New(rand.NewSource(*seed + 1))}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	opts := sim.Options{Sigma: *sigma, Rng: rand.New(rand.NewSource(*seed))}
	if *comm {
		opts.Comm = platform.DefaultCommModel()
	}
	if *faults {
		horizon := core.FaultHorizonFactor * sched.HEFT(g, plat, tt).Makespan
		fs := *faultSeed
		if fs == 0 {
			fs = *seed + 104729
		}
		opts.Faults = sim.GeneratePlan(fs, plat.Size(), sim.SpecForRate(*faultRate, horizon))
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(0)
		opts.Tracer = tracer
	}
	res, err := sim.Simulate(g, plat, tt, pol, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.ValidateResultStrict(g, res, sim.CheckOptions{
		Platform: plat, Timing: tt, Sigma: *sigma, Comm: opts.Comm, Faults: opts.Faults,
	}); err != nil {
		log.Fatalf("schedule invalid: %v", err)
	}

	st := sim.Analyze(g, plat, res)
	fmt.Printf("%s T=%d (%d tasks) on %s, σ=%.2f, policy=%s\n",
		kind, *tiles, g.NumTasks(), plat, *sigma, *policy)
	fmt.Printf("makespan        %.1f ms   (%d decisions, %d idle)\n", res.Makespan, res.Decisions, res.IdleDecisions)
	fmt.Printf("mean utilisation %.1f%%\n", 100*st.MeanUtilisation)
	for r := range st.BusyTime {
		fmt.Printf("  %s %d: busy %.1f ms (%.0f%%)\n",
			plat.Resources[r].Type, r, st.BusyTime[r], 100*st.BusyTime[r]/res.Makespan)
	}
	fmt.Println("kernel placement (CPU / GPU):")
	for k := 0; k < taskgraph.NumKernels; k++ {
		fmt.Printf("  %-9s %3d / %3d  (%.0f%% on GPU)\n", g.KernelNames[k],
			st.KernelPlacement[k][platform.CPU], st.KernelPlacement[k][platform.GPU],
			100*st.GPUShare(taskgraph.Kernel(k)))
	}
	fmt.Printf("critical chain: %d tasks\n", len(st.CriticalChain))
	if opts.Faults != nil {
		var outages, deaths, degrades int
		for _, e := range opts.Faults.Events {
			switch e.Kind {
			case sim.FaultOutage:
				outages++
			case sim.FaultDeath:
				deaths++
			case sim.FaultDegrade:
				degrades++
			}
		}
		fmt.Printf("faults: %d outages, %d deaths, %d degrades planned; %d task attempts killed\n",
			outages, deaths, degrades, len(res.Kills))
		for _, k := range res.Kills {
			fmt.Printf("  killed %s on %s %d at %.1f ms (ran %.1f ms, cause %s)\n",
				g.Tasks[k.Task].Name, plat.Resources[k.Resource].Type, k.Resource, k.At, k.At-k.Start, k.Cause)
		}
	}

	if *csvPath != "" {
		writeFile(*csvPath, func(f *os.File) error { return sim.WriteGanttCSV(f, g, plat, res) })
		fmt.Println("wrote", *csvPath)
	}
	if *svgPath != "" {
		writeFile(*svgPath, func(f *os.File) error { return sim.WriteGanttSVG(f, g, plat, res) })
		fmt.Println("wrote", *svgPath)
	}
	if tracer != nil {
		writeFile(*tracePath, func(f *os.File) error { return tracer.WriteChromeTrace(f) })
		fmt.Println("wrote", *tracePath)
	}
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
}
