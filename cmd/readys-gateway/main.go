// readys-gateway fronts N readys-serve replicas behind one endpoint: it
// routes each schedule request to the replica that owns its model
// (rendezvous hashing on the canonical model-spec hash), health-checks the
// replicas and fails requests over transparently when a replica dies.
//
// Usage:
//
//	readys-gateway -addr :8090 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	readys-gateway -smoke -trace-out /tmp/gw   # in-process end-to-end check
//
// Endpoints:
//
//	POST /v1/schedule   route a scheduling request to its owning replica
//	GET  /v1/models     proxy the model listing from a healthy replica
//	GET  /healthz       gateway liveness + per-replica health
//	GET  /metrics       routing counters, per-replica health, failovers
//	                    (?format=prometheus for text exposition)
//	GET  /debug/trace   gateway request/forward spans as Chrome trace JSON
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/gateway"
	"readys/internal/obs"
	"readys/internal/serve"
	"readys/internal/taskgraph"
)

func main() {
	var (
		addr           = flag.String("addr", ":8090", "listen address")
		replicas       = flag.String("replicas", "", "comma-separated readys-serve base URLs (required unless -smoke)")
		healthInterval = flag.Duration("health-interval", 0, "replica /healthz probe period (0 = default)")
		retries        = flag.Int("retries", 0, "failover attempts after the first forward fails (0 = default)")
		timeout        = flag.Duration("timeout", 0, "per-request deadline across all failover attempts (0 = default)")
		smoke          = flag.Bool("smoke", false, "run an in-process gateway + 2 batched replicas end-to-end check and exit")
		traceOut       = flag.String("trace-out", "", "with -smoke: write client.json, gateway.json, replica1.json and replica2.json into this directory")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "readys-gateway: ", log.LstdFlags)

	if *smoke {
		if err := runSmoke(logger, *traceOut); err != nil {
			logger.Fatal(err)
		}
		fmt.Println("gateway smoke OK")
		return
	}

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		logger.Fatal("at least one replica is required: -replicas http://host:port[,...]")
	}
	gw, err := gateway.New(gateway.Config{
		Replicas:       urls,
		HealthInterval: *healthInterval,
		Retries:        *retries,
		RequestTimeout: *timeout,
		Logger:         logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("fronting %d replicas", len(urls))

	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		logger.Printf("received %s, shutting down", sig)
		if err := httpSrv.Close(); err != nil {
			logger.Printf("http close: %v", err)
		}
		gw.Close()
		close(done)
	}()

	logger.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	<-done
}

// smokeReplica is one in-process serving daemon on a real loopback listener.
type smokeReplica struct {
	srv  *serve.Server
	http *http.Server
	url  string
}

// runSmoke is the end-to-end check behind `make gateway-smoke`: a gateway
// over two batched replicas serving the same checkpoint, driven by a traced
// client. It proves (1) concurrent batched requests all succeed, (2) killing
// the replica that owns the model fails requests over to the survivor with
// bit-identical schedules, (3) the survivor's batch instrumentation saw
// traffic, and (4) the client → gateway → replica trace exports stitch into
// one linked timeline (the Makefile re-validates that with
// readys-obs-check -merge / -links).
func runSmoke(logger *log.Logger, traceOut string) error {
	dir, err := os.MkdirTemp("", "readys-gateway-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// One untrained checkpoint shared by both replicas: untrained weights are
	// deterministically seeded, so the replicas must schedule identically.
	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, 4, 1, 1)
	spec.Window, spec.Layers, spec.Hidden = 1, 1, 8
	if err := core.NewAgent(spec.AgentConfig()).SaveCheckpoint(spec.ModelPath(dir), map[string]string{"smoke": "1"}); err != nil {
		return err
	}

	var reps []*smokeReplica
	for i := 0; i < 2; i++ {
		srv := serve.New(serve.Config{
			ModelsDir: dir, Workers: 4, Queue: 64, RequestTimeout: 30 * time.Second,
			Batch: true, BatchWidth: 4, BatchDwell: 2 * time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		reps = append(reps, &smokeReplica{srv: srv, http: hs, url: "http://" + ln.Addr().String()})
	}
	defer func() {
		for _, r := range reps {
			r.http.Close()
		}
	}()

	// The health interval is pinned long so failover detection below is
	// purely passive (a failed forward), making the failover count
	// deterministic; the active prober has its own test coverage.
	gw, err := gateway.New(gateway.Config{
		Replicas:       []string{reps[0].url, reps[1].url},
		HealthInterval: time.Hour,
		Retries:        3,
		RetryBase:      5 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	// The "client process" keeps its own tracer; its root span context rides
	// every request, so gateway and replica spans all join its trace.
	clientTracer := obs.NewTracer(0)
	clientTracer.NameProcess(3, "smoke-client")
	client := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	clientStart := time.Now()

	httpClient := &http.Client{Timeout: 30 * time.Second}
	post := func(seed int64) (int, serve.ScheduleResponse, error) {
		body, _ := json.Marshal(serve.ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1, Seed: seed})
		req, err := http.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body))
		if err != nil {
			return 0, serve.ScheduleResponse{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		client.Inject(req.Header)
		// The gateway handler is driven in-process (no third listener to
		// manage); gateway → replica hops are real HTTP.
		rec := newRecorder()
		gw.Handler().ServeHTTP(rec, req)
		var resp serve.ScheduleResponse
		if rec.status == http.StatusOK {
			if err := json.Unmarshal(rec.body.Bytes(), &resp); err != nil {
				return rec.status, resp, err
			}
		}
		return rec.status, resp, nil
	}

	// Phase 1: concurrent batched requests with both replicas healthy.
	const clients = 8
	want := make([]serve.ScheduleResponse, clients)
	if err := burst(clients, post, func(i int, resp serve.ScheduleResponse) { want[i] = resp }); err != nil {
		return fmt.Errorf("phase 1 (both replicas up): %w", err)
	}

	// Phase 2: kill the replica that owns the model; every request must fail
	// over to the survivor and produce the same schedule as phase 1.
	owner := gw.RouteFor(&serve.ScheduleRequest{Kind: "cholesky", T: 4, CPUs: 1, GPUs: 1})
	var survivor *smokeReplica
	for _, r := range reps {
		if r.url == owner {
			r.http.Close()
			logger.Printf("smoke: killed owning replica %s", r.url)
		} else {
			survivor = r
		}
	}
	got := make([]serve.ScheduleResponse, clients)
	if err := burst(clients, post, func(i int, resp serve.ScheduleResponse) { got[i] = resp }); err != nil {
		return fmt.Errorf("phase 2 (owner killed): %w", err)
	}
	for i := range got {
		if got[i].Makespan != want[i].Makespan || got[i].Decisions != want[i].Decisions {
			return fmt.Errorf("smoke: seed %d diverged after failover: makespan %v/%d decisions vs %v/%d",
				i, got[i].Makespan, got[i].Decisions, want[i].Makespan, want[i].Decisions)
		}
	}
	if gw.Metrics().Failovers() == 0 {
		return errors.New("smoke: owning replica died but no failover was recorded")
	}

	// Phase 3: the survivor's batch instrumentation must have seen traffic.
	mr, err := httpClient.Get(survivor.url + "/metrics?format=prometheus")
	if err != nil {
		return err
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !hasPositiveSample(string(mbody), "readys_batch_width_count") {
		return errors.New("smoke: survivor recorded no batch flushes (readys_batch_width_count is 0)")
	}

	// Phase 4: export every process's trace for the cross-process link check.
	clientTracer.Complete("smoke-run", "client", 3, 1, 0,
		float64(time.Since(clientStart))/float64(time.Microsecond),
		obs.SpanArgs(nil, client.TraceID, client.SpanID, ""))
	if traceOut != "" {
		if err := os.MkdirAll(traceOut, 0o755); err != nil {
			return err
		}
		writeTrace := func(name string, wt func(io.Writer) error) error {
			f, err := os.Create(filepath.Join(traceOut, name))
			if err != nil {
				return err
			}
			if err := wt(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		if err := writeTrace("client.json", clientTracer.WriteChromeTrace); err != nil {
			return err
		}
		if err := writeTrace("gateway.json", gw.Tracer().WriteChromeTrace); err != nil {
			return err
		}
		for i, r := range reps {
			// The dead replica's listener is gone but its handler still
			// works in-process, so its spans are exported too.
			rec := newRecorder()
			r.srv.Handler().ServeHTTP(rec, mustRequest(http.MethodGet, "/debug/trace"))
			if rec.status != http.StatusOK {
				return fmt.Errorf("replica %d trace export: status %d", i+1, rec.status)
			}
			name := fmt.Sprintf("replica%d.json", i+1)
			if err := os.WriteFile(filepath.Join(traceOut, name), rec.body.Bytes(), 0o644); err != nil {
				return err
			}
		}
		logger.Printf("smoke: traces written to %s", traceOut)
	}
	return nil
}

// burst runs n concurrent schedule requests and hands each 200 response to
// check; any non-200 fails the burst.
func burst(n int, post func(int64) (int, serve.ScheduleResponse, error), check func(int, serve.ScheduleResponse)) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, resp, err := post(int64(i))
			if err != nil {
				errs[i] = err
				return
			}
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("seed %d: status %d", i, status)
				return
			}
			check(i, resp)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// recorder is a minimal in-process http.ResponseWriter (no httptest import in
// a shipped binary).
type recorder struct {
	hdr    http.Header
	body   bytes.Buffer
	status int
}

func newRecorder() *recorder { return &recorder{hdr: make(http.Header), status: http.StatusOK} }

func (r *recorder) Header() http.Header         { return r.hdr }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

func mustRequest(method, path string) *http.Request {
	req, err := http.NewRequest(method, path, nil)
	if err != nil {
		panic(err)
	}
	return req
}

// hasPositiveSample reports whether an unlabelled Prometheus sample line for
// name carries a value > 0.
func hasPositiveSample(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		return rest != "0" && rest != "0.0"
	}
	return false
}
