// readys-stream runs one online multi-tenant scheduling episode: jobs (DAGs
// of mixed families and sizes) arrive over simulated time on a persistent
// heterogeneous cluster, one policy schedules the union of their ready tasks,
// and the report is job-level — per-job response time and slowdown, mean/p99
// response, cluster utilization and queue depth. The union schedule is always
// checked with the strict fault-aware validator before anything is printed.
//
// Arrivals come from a Poisson process (-rate/-jobs/-job-kinds/-job-sizes,
// seeded by -arrival-seed) or from a JSONL trace (-arrivals; one
// {"at_ms": ..., "kind": ..., "size": ...} object per line). The generated
// stream can be exported with -write-arrivals for replay.
//
// Usage:
//
//	readys-stream -rate 4 -jobs 12 -policy mct -sigma 0.1
//	readys-stream -policy readys -models models
//	readys-stream -arrivals stream.jsonl -policy replan-heft -faults
//	readys-stream -rate 8 -jobs 20 -trace stream-trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/obs"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/stream"
	"readys/internal/taskgraph"
)

func main() {
	var (
		arrivalsPath = flag.String("arrivals", "", "JSONL arrival trace to replay (overrides the Poisson flags)")
		rate         = flag.Float64("rate", 4, "Poisson arrival rate in jobs per second of simulated time")
		jobs         = flag.Int("jobs", 12, "number of job arrivals to generate")
		jobKinds     = flag.String("job-kinds", "cholesky,lu", "comma-separated DAG families of the job mix")
		jobSizes     = flag.String("job-sizes", "2,3", "comma-separated size parameters of the job mix")
		arrivalSeed  = flag.Int64("arrival-seed", 1, "seed of the Poisson arrival draw")
		cpus         = flag.Int("cpus", 2, "number of CPUs")
		gpus         = flag.Int("gpus", 2, "number of GPUs")
		sigma        = flag.Float64("sigma", 0.1, "duration noise level σ")
		policy       = flag.String("policy", "mct", "scheduler: readys, heft-per-job, replan-heft, mct, minmin, maxmin, fifo, random")
		models       = flag.String("models", exp.DefaultModelsDir(), "model directory (for -policy readys)")
		seed         = flag.Int64("seed", 1, "simulation seed (duration noise, resource shuffles)")
		faults       = flag.Bool("faults", false, "inject mid-stream faults from a seed-derived plan")
		faultRate    = flag.Float64("fault-rate", 1, "fault rate for -faults (events of each kind per resource, see sim.SpecForRate)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault-plan seed for -faults (default: derived from -seed)")
		tracePath    = flag.String("trace", "", "write the stream (arrivals, slices, faults) as Chrome trace-event JSON to this path")
		metricsPath  = flag.String("metrics", "", "write the run's readys_stream_* metrics as Prometheus text exposition to this path ('-' for stdout)")
		flightPath   = flag.String("flight", "", "write the cluster flight recorder (arrivals, decisions, kills, faults, ready depth) as JSONL to this path")
		writeArr     = flag.String("write-arrivals", "", "write the (generated or replayed) arrival list as JSONL to this path")
		quiet        = flag.Bool("quiet", false, "suppress the per-job table")
		precision    = flag.String("precision", "float64", "serving precision for -policy readys: float64 (bit-identical), float32 or int8")
	)
	flag.Parse()

	arrivals, err := loadArrivals(*arrivalsPath, *rate, *jobs, *jobKinds, *jobSizes, *arrivalSeed)
	if err != nil {
		log.Fatal(err)
	}
	plat := platform.New(*cpus, *gpus)

	var pol sim.Policy
	switch *policy {
	case "readys":
		prec, err := core.ParsePrecision(*precision)
		if err != nil {
			log.Fatal(err)
		}
		agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
		if _, err := agent.LoadCheckpoint(exp.StreamAgentPath(*models)); err != nil {
			log.Fatalf("loading %s: %v (train it with readys-train -stream)", exp.StreamAgentPath(*models), err)
		}
		pol = core.NewServingPolicy(agent, prec)
	case "heft-per-job":
		pol = stream.NewHEFTPerJobPolicy()
	case "replan-heft":
		pol = sched.NewReplanHEFTPolicy()
	case "mct":
		pol = sched.MCTPolicy{}
	case "minmin":
		pol = sched.MinMinPolicy{}
	case "maxmin":
		pol = sched.MaxMinPolicy{}
	case "fifo":
		pol = sched.FIFOPolicy{}
	case "random":
		pol = sched.RandomPolicy{Rng: rand.New(rand.NewSource(*seed + 1))}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	cfg := stream.Config{
		Platform: plat,
		Arrivals: arrivals,
		Sigma:    *sigma,
		Rng:      rand.New(rand.NewSource(*seed)),
	}
	if *faults {
		horizon := arrivals[len(arrivals)-1].At * 1.5
		if horizon <= 0 {
			horizon = 1000
		}
		fs := *faultSeed
		if fs == 0 {
			fs = *seed + 104729
		}
		cfg.Faults = sim.GeneratePlan(fs, plat.Size(), sim.SpecForRate(*faultRate, horizon))
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(0)
		cfg.Tracer = tracer
	}
	if *metricsPath != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *flightPath != "" {
		cfg.Recorder = obs.NewFlightRecorder(0)
	}

	res, err := stream.Run(pol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		log.Fatalf("union schedule invalid: %v", err)
	}

	fmt.Printf("%d jobs (%s, sizes %s) on %s, σ=%.2f, policy=%s\n",
		len(res.Jobs), *jobKinds, *jobSizes, plat, *sigma, *policy)
	if !*quiet {
		fmt.Printf("%4s  %-9s %4s %6s  %10s %10s %10s %9s\n",
			"job", "kind", "size", "tasks", "arrive_ms", "done_ms", "resp_ms", "slowdown")
		for _, j := range res.Jobs {
			fmt.Printf("%4d  %-9s %4d %6d  %10.1f %10.1f %10.1f %9.2f\n",
				j.Job, j.Kind, j.Size, j.Tasks, j.ArriveAt, j.DoneAt, j.Response, j.Slowdown)
		}
	}
	fmt.Printf("stream makespan   %.1f ms   (%d decisions, %d idle, %d kills)\n",
		res.Makespan, res.Decisions, res.IdleDecisions, res.Kills)
	fmt.Printf("response          mean %.1f ms, p99 %.1f ms\n", res.MeanResponse, res.P99Response)
	fmt.Printf("mean slowdown     %.2f× isolated HEFT\n", res.MeanSlowdown)
	fmt.Printf("utilization       %.1f%%   mean ready depth %.2f\n",
		100*res.Utilization, res.MeanReadyDepth)

	if *writeArr != "" {
		writeFile(*writeArr, func(f *os.File) error { return stream.WriteArrivals(f, arrivals) })
		fmt.Println("wrote", *writeArr)
	}
	if tracer != nil {
		writeFile(*tracePath, func(f *os.File) error { return tracer.WriteChromeTrace(f) })
		fmt.Println("wrote", *tracePath)
	}
	if cfg.Metrics != nil {
		if *metricsPath == "-" {
			if err := cfg.Metrics.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else {
			writeFile(*metricsPath, func(f *os.File) error { return cfg.Metrics.WriteText(f) })
			fmt.Println("wrote", *metricsPath)
		}
	}
	if res.Flight != nil {
		writeFile(*flightPath, func(f *os.File) error { return res.Flight.WriteJSONL(f) })
		fmt.Printf("wrote %s (%d flight events, %d overwritten)\n", *flightPath, res.Flight.Len(), res.Flight.Dropped())
	}
}

// loadArrivals reads the JSONL trace when given, otherwise draws the Poisson
// stream described by the flags.
func loadArrivals(path string, rate float64, jobs int, kindsCSV, sizesCSV string, seed int64) ([]stream.Arrival, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return stream.ReadArrivals(f)
	}
	var kinds []taskgraph.Kind
	for _, s := range strings.Split(kindsCSV, ",") {
		k, err := taskgraph.KindFromString(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad job size %q: %w", s, err)
		}
		sizes = append(sizes, n)
	}
	return stream.PoissonProcess{Rate: rate, Jobs: jobs, Kinds: kinds, Sizes: sizes}.
		Generate(rand.New(rand.NewSource(seed)))
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
}
