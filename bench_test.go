// Benchmarks regenerating the paper's evaluation artefacts (one benchmark per
// figure; see DESIGN.md §3 for the experiment index). Each figure benchmark
// evaluates trained checkpoints from ./models (READYS_MODELS_DIR overrides)
// and reports the paper's headline metrics with b.ReportMetric:
//
//	vsHEFT@σ=0, vsHEFT@σ=0.5, vsMCT@σ=0, vsMCT@σ=0.5
//
// ratios above 1 mean READYS wins. Figure benchmarks skip when their
// checkpoint is missing — run `go run ./cmd/readys-train -all` once to
// produce all of them (the EXPERIMENTS.md results were generated that way).
package readys_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/platform"
	"readys/internal/rl"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// loadSpec loads the cached checkpoint for a spec or skips the benchmark.
func loadSpec(b *testing.B, spec exp.AgentSpec) *core.Agent {
	b.Helper()
	dir := exp.DefaultModelsDir()
	if _, err := os.Stat(spec.ModelPath(dir)); err != nil {
		b.Skipf("checkpoint %s missing; run `go run ./cmd/readys-train -all`", spec.ModelPath(dir))
	}
	agent, err := exp.LoadAgent(spec, dir)
	if err != nil {
		b.Fatal(err)
	}
	return agent
}

// reportComparison runs the σ∈{0, 0.5} endpoints of a comparison and reports
// the improvement ratios.
func reportComparison(b *testing.B, agent *core.Agent, kind taskgraph.Kind, T, cpus, gpus int) {
	b.Helper()
	pts := exp.Compare(agent, kind, T, cpus, gpus, []float64{0, 0.5}, exp.EvalRuns, 42)
	b.ReportMetric(pts[0].ImproveHEFT, "vsHEFT@σ=0")
	b.ReportMetric(pts[1].ImproveHEFT, "vsHEFT@σ=0.5")
	b.ReportMetric(pts[0].ImproveMCT, "vsMCT@σ=0")
	b.ReportMetric(pts[1].ImproveMCT, "vsMCT@σ=0.5")
}

// BenchmarkFigure3 regenerates Figure 3: READYS vs HEFT and MCT on
// 2 CPUs + 2 GPUs for each kernel (columns) and T ∈ {2,4,8} (rows). The
// timed unit is one full evaluation episode of the agent.
func BenchmarkFigure3(b *testing.B) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		for _, T := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/T=%d", kind, T), func(b *testing.B) {
				agent := loadSpec(b, exp.DefaultAgentSpec(kind, T, 2, 2))
				prob := core.NewProblem(kind, T, 2, 2, 0.2)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prob.Simulate(core.NewPolicy(agent), rand.New(rand.NewSource(int64(i)))); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportComparison(b, agent, kind, T, 2, 2)
			})
		}
	}
}

// benchTransfer regenerates one transfer figure: agents trained on Cholesky
// trainT applied to testT ∈ {10, 12} on the given platform.
func benchTransfer(b *testing.B, cpus, gpus int) {
	for _, trainT := range []int{4, 6, 8} {
		for _, testT := range []int{10, 12} {
			b.Run(fmt.Sprintf("train=%d/test=%d", trainT, testT), func(b *testing.B) {
				agent := loadSpec(b, exp.DefaultAgentSpec(taskgraph.Cholesky, trainT, cpus, gpus))
				prob := core.NewProblem(taskgraph.Cholesky, testT, cpus, gpus, 0.2)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prob.Simulate(core.NewPolicy(agent), rand.New(rand.NewSource(int64(i)))); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportComparison(b, agent, taskgraph.Cholesky, testT, cpus, gpus)
			})
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (transfer, 4 CPUs).
func BenchmarkFigure4(b *testing.B) { benchTransfer(b, 4, 0) }

// BenchmarkFigure5 regenerates Figure 5 (transfer, 2 CPUs + 2 GPUs).
func BenchmarkFigure5(b *testing.B) { benchTransfer(b, 2, 2) }

// BenchmarkFigure6 regenerates Figure 6 (transfer, 4 GPUs).
func BenchmarkFigure6(b *testing.B) { benchTransfer(b, 0, 4) }

// BenchmarkFigure7 regenerates Figure 7: the wall-clock inference time of one
// scheduling decision as the DAG (and thus the window) grows. The timed unit
// is a single Agent.Forward; the mean window size is reported as a metric.
func BenchmarkFigure7(b *testing.B) {
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
	for _, T := range []int{2, 4, 6, 8, 10, 12} {
		b.Run(fmt.Sprintf("T=%d", T), func(b *testing.B) {
			prob := core.NewProblem(taskgraph.Cholesky, T, 2, 2, 0.1)
			// Drive one episode to a mid-execution state and capture an
			// encoded state of typical window size.
			var captured *core.EncodedState
			F := taskgraph.DescendantFeatures(prob.Graph)
			probe := capturePolicy{agent: agent, F: F, capture: &captured, at: prob.Graph.NumTasks() / 2}
			if _, err := prob.Simulate(&probe, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
			if captured == nil {
				b.Fatal("no state captured")
			}
			b.ReportMetric(float64(len(captured.Nodes)), "window_tasks")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent.Forward(captured)
			}
		})
	}
}

// capturePolicy runs the agent greedily and snapshots the encoded state of
// the at-th decision.
type capturePolicy struct {
	agent   *core.Agent
	F       [][taskgraph.NumKernels]float64
	capture **core.EncodedState
	at      int
	n       int
}

func (p *capturePolicy) Reset(s *sim.State) {}
func (p *capturePolicy) Decide(s *sim.State, r int) int {
	es := core.Encode(s, r, p.F, p.agent.Cfg.Window)
	if p.n == p.at && *p.capture == nil {
		*p.capture = es
	}
	p.n++
	fw := p.agent.Forward(es)
	a := fw.Argmax()
	if a == fw.IdleIndex && fw.IdleIndex >= 0 {
		return sim.NoTask
	}
	return es.ReadyTasks[a]
}

// BenchmarkTrainingEpisode measures the cost of one A2C training episode
// (rollout + backward + update share) on the paper's main training sizes —
// the "≈20 minutes on a standard laptop" data point of §V-D.
func BenchmarkTrainingEpisode(b *testing.B) {
	for _, T := range []int{4, 8} {
		b.Run(fmt.Sprintf("cholesky/T=%d", T), func(b *testing.B) {
			prob := core.NewProblem(taskgraph.Cholesky, T, 2, 2, 0.1)
			agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 32, Seed: 1})
			cfg := rl.DefaultConfig()
			cfg.Episodes = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := rl.NewTrainer(agent, prob, cfg).Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHEFT measures the static heuristic itself (schedule construction).
func BenchmarkHEFT(b *testing.B) {
	for _, T := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("cholesky/T=%d", T), func(b *testing.B) {
			g := taskgraph.NewCholesky(T)
			plat := platform.New(2, 2)
			tt := platform.TimingFor(taskgraph.Cholesky)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched.HEFT(g, plat, tt)
			}
		})
	}
}

// BenchmarkMCTEpisode measures a full MCT-scheduled episode.
func BenchmarkMCTEpisode(b *testing.B) {
	for _, T := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("cholesky/T=%d", T), func(b *testing.B) {
			g := taskgraph.NewCholesky(T)
			plat := platform.New(2, 2)
			tt := platform.TimingFor(taskgraph.Cholesky)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Simulate(g, plat, tt, sched.MCTPolicy{},
					sim.Options{Sigma: 0.2, Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIdleAction isolates the ∅ action's contribution (a design
// choice DESIGN.md calls out): the cached Cholesky T=4 agent is evaluated
// with the idle action enabled and disabled; the reported metrics are the
// mean makespans of both variants at σ=0.2.
func BenchmarkAblationIdleAction(b *testing.B) {
	agent := loadSpec(b, exp.DefaultAgentSpec(taskgraph.Cholesky, 4, 2, 2))
	prob := core.NewProblem(taskgraph.Cholesky, 4, 2, 2, 0.2)
	evalMean := func(disable bool) float64 {
		var sum float64
		const runs = 5
		for i := 0; i < runs; i++ {
			pol := core.NewPolicy(agent)
			pol.DisableIdle = disable
			res, err := prob.Simulate(pol, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			sum += res.Makespan
		}
		return sum / runs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := core.NewPolicy(agent)
		if _, err := prob.Simulate(pol, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(evalMean(false), "ms_with_idle")
	b.ReportMetric(evalMean(true), "ms_no_idle")
}

// BenchmarkCommOverlap quantifies the paper's §III-A assumption that
// communications can be neglected: the same HEFT schedule is executed with
// free communication and with a PCIe-class communication model; the reported
// metric is the makespan inflation factor (≈1 validates the assumption).
func BenchmarkCommOverlap(b *testing.B) {
	g := taskgraph.NewCholesky(8)
	plat := platform.New(2, 2)
	tt := platform.TimingFor(taskgraph.Cholesky)
	comm := platform.DefaultCommModel()
	h := sched.HEFTComm(g, plat, tt, comm)
	b.ResetTimer()
	var freeMs, commMs float64
	for i := 0; i < b.N; i++ {
		rf, err := sim.Simulate(g, plat, tt, sched.NewStaticPolicy(h), sim.Options{Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			b.Fatal(err)
		}
		rc, err := sim.Simulate(g, plat, tt, sched.NewStaticPolicy(h), sim.Options{Rng: rand.New(rand.NewSource(int64(i))), Comm: comm})
		if err != nil {
			b.Fatal(err)
		}
		freeMs, commMs = rf.Makespan, rc.Makespan
	}
	b.StopTimer()
	if freeMs > 0 {
		b.ReportMetric(commMs/freeMs, "comm_inflation")
	}
}

// BenchmarkDAGGeneration measures the task-graph generators.
func BenchmarkDAGGeneration(b *testing.B) {
	for _, kind := range []taskgraph.Kind{taskgraph.Cholesky, taskgraph.LU, taskgraph.QR} {
		b.Run(fmt.Sprintf("%s/T=12", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				taskgraph.NewByKind(kind, 12)
			}
		})
	}
}
