// Package readys is a from-scratch Go reproduction of
//
//	READYS: A Reinforcement Learning Based Strategy for Heterogeneous
//	Dynamic Scheduling — Grinsztajn, Beaumont, Jeannot, Preux,
//	IEEE CLUSTER 2021.
//
// READYS schedules Directed Acyclic Graphs of tasks onto heterogeneous
// CPU/GPU platforms dynamically: every time a resource becomes free, a graph
// convolutional network scores the ready tasks (plus an explicit "stay idle"
// action) from a sliding window over the DAG, and an actor-critic (A2C)
// training loop learns a policy minimising the makespan. This package is the
// public facade over the implementation in internal/…:
//
//   - task graphs: tiled Cholesky/LU/QR factorisation DAGs and custom DAGs
//     (internal/taskgraph)
//   - heterogeneous platform and stochastic duration model (internal/platform)
//   - discrete-event scheduling simulator (internal/sim)
//   - HEFT and MCT baselines (internal/sched)
//   - the READYS agent and encoder (internal/core), A2C trainer (internal/rl)
//   - the experiment harness regenerating the paper's figures (internal/exp)
//
// A minimal session:
//
//	prob, _ := readys.NewProblem(readys.Cholesky, 4, 2, 2, 0.1)
//	agent := readys.NewAgent(readys.DefaultAgentConfig())
//	hist, _ := readys.Train(agent, prob, readys.DefaultTrainConfig())
//	makespans, _ := readys.Evaluate(agent, prob, 5, 42)
//
// For long-lived online serving of scheduling requests over HTTP, see
// internal/serve and the readys-serve daemon.
package readys

import (
	"errors"
	"fmt"
	"math/rand"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/rl"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// DAG families.
const (
	Cholesky = taskgraph.Cholesky
	LU       = taskgraph.LU
	QR       = taskgraph.QR
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Kind selects a DAG family (Cholesky, LU, QR).
	Kind = taskgraph.Kind
	// Graph is a directed acyclic task graph.
	Graph = taskgraph.Graph
	// Problem bundles a DAG, a platform, timing tables and a noise level.
	Problem = core.Problem
	// Agent is the READYS policy/value network.
	Agent = core.Agent
	// AgentConfig holds the agent's architecture hyper-parameters.
	AgentConfig = core.Config
	// TrainConfig holds the A2C hyper-parameters.
	TrainConfig = rl.Config
	// TrainHistory is the per-episode training curve.
	TrainHistory = rl.History
	// Platform is an ordered set of CPU/GPU resources.
	Platform = platform.Platform
	// Result is a simulated schedule (makespan + trace).
	Result = sim.Result
)

// NewGraph builds the task graph of a factorisation family with T tiles per
// matrix dimension. It returns an error on T < 1 or an unknown family.
func NewGraph(kind Kind, T int) (*Graph, error) {
	if T < 1 {
		return nil, fmt.Errorf("readys: tile count T must be >= 1, got %d", T)
	}
	switch kind {
	case Cholesky, LU, QR, taskgraph.Gemm, taskgraph.Stencil, taskgraph.ForkJoin:
		return taskgraph.NewByKind(kind, T), nil
	default:
		return nil, fmt.Errorf("readys: DAG kind %q has no sized generator", kind)
	}
}

// NewPlatform builds a platform with the given number of CPUs and GPUs. It
// returns an error when either count is negative or the platform would be
// empty.
func NewPlatform(numCPU, numGPU int) (Platform, error) {
	if numCPU < 0 || numGPU < 0 || numCPU+numGPU < 1 {
		return Platform{}, fmt.Errorf("readys: platform needs >= 1 resource, got %d CPUs and %d GPUs", numCPU, numGPU)
	}
	return platform.New(numCPU, numGPU), nil
}

// NewProblem builds a scheduling problem: a factorisation DAG on a platform
// with the given duration-noise level σ (§V-B of the paper). It returns an
// error on T < 1, an empty or negatively-sized platform, σ < 0, or an
// unknown DAG family.
func NewProblem(kind Kind, T, numCPU, numGPU int, sigma float64) (Problem, error) {
	graph, err := NewGraph(kind, T)
	if err != nil {
		return Problem{}, err
	}
	plat, err := NewPlatform(numCPU, numGPU)
	if err != nil {
		return Problem{}, err
	}
	if sigma < 0 {
		return Problem{}, fmt.Errorf("readys: duration noise sigma must be >= 0, got %g", sigma)
	}
	return Problem{Graph: graph, Platform: plat, Timing: platform.TimingFor(kind), Sigma: sigma}, nil
}

// DefaultAgentConfig returns the paper's best-performing architecture
// (window w=2, two GCN layers).
func DefaultAgentConfig() AgentConfig { return core.DefaultConfig() }

// NewAgent builds a READYS agent with freshly initialised parameters.
func NewAgent(cfg AgentConfig) *Agent { return core.NewAgent(cfg) }

// DefaultTrainConfig returns the A2C hyper-parameters used by the experiment
// harness.
func DefaultTrainConfig() TrainConfig { return rl.DefaultConfig() }

// Train runs A2C on the problem and returns the training history.
func Train(agent *Agent, prob Problem, cfg TrainConfig) (TrainHistory, error) {
	if err := checkAgentProblem(agent, prob); err != nil {
		return TrainHistory{}, err
	}
	return rl.NewTrainer(agent, prob, cfg).Run(nil)
}

// Evaluate runs the trained agent greedily for `runs` episodes and returns
// the achieved makespans.
func Evaluate(agent *Agent, prob Problem, runs int, seed int64) ([]float64, error) {
	if err := checkAgentProblem(agent, prob); err != nil {
		return nil, err
	}
	if runs < 1 {
		return nil, fmt.Errorf("readys: evaluation needs >= 1 run, got %d", runs)
	}
	return rl.Evaluate(agent, prob, runs, seed)
}

// Schedule executes one episode of the agent on the problem and returns the
// full schedule (placements and makespan).
func Schedule(agent *Agent, prob Problem, seed int64) (Result, error) {
	if err := checkAgentProblem(agent, prob); err != nil {
		return Result{}, err
	}
	return prob.Simulate(core.NewPolicy(agent), rand.New(rand.NewSource(seed)))
}

// CloneAgent returns an independent deep copy of the agent: same
// architecture, same parameter values, no shared mutable state. Clones are
// how the serving layer gives each worker goroutine its own inference
// instance.
func CloneAgent(agent *Agent) (*Agent, error) {
	if agent == nil {
		return nil, errors.New("readys: nil agent")
	}
	return agent.Clone(), nil
}

// ValidateSchedule checks that a simulation result is a feasible schedule for
// the problem: every task placed exactly once, precedence respected, no two
// tasks overlapping on a resource, makespan consistent with the trace.
func ValidateSchedule(prob Problem, res Result) error {
	if err := prob.Validate(); err != nil {
		return err
	}
	return sim.ValidateResult(prob.Graph, prob.Platform.Size(), res)
}

// checkAgentProblem guards the episode-running entry points against nil
// agents and malformed problems (zero-valued structs, negative sigma, …).
func checkAgentProblem(agent *Agent, prob Problem) error {
	if agent == nil {
		return errors.New("readys: nil agent")
	}
	return prob.Validate()
}

// HEFTMakespan returns the projected makespan of the static HEFT heuristic on
// the problem under expected durations.
func HEFTMakespan(prob Problem) float64 {
	return sched.HEFT(prob.Graph, prob.Platform, prob.Timing).Makespan
}

// MCTMakespan simulates the dynamic MCT heuristic on the problem and returns
// its makespan.
func MCTMakespan(prob Problem, seed int64) (float64, error) {
	if err := prob.Validate(); err != nil {
		return 0, err
	}
	res, err := prob.Simulate(sched.MCTPolicy{}, rand.New(rand.NewSource(seed)))
	return res.Makespan, err
}

// SaveAgent writes the agent's parameters (plus metadata) to path; LoadAgent
// restores them into an agent with the same architecture — the mechanism
// behind the paper's transfer-learning experiments.
func SaveAgent(agent *Agent, path string, meta map[string]string) error {
	return agent.SaveCheckpoint(path, meta)
}

// LoadAgent restores parameters saved by SaveAgent.
func LoadAgent(agent *Agent, path string) (map[string]string, error) {
	return agent.LoadCheckpoint(path)
}
