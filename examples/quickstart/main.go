// Quickstart: train a small READYS agent on a tiled Cholesky factorisation
// DAG for a 1 CPU + 1 GPU node, then compare it with the HEFT and MCT
// heuristics, with and without duration noise.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The whole example takes well under a minute on a laptop core.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/rl"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func main() {
	// The problem: Cholesky with T=3 tiles (10 tasks) on 1 CPU + 1 GPU,
	// trained under mild duration noise.
	prob := core.NewProblem(taskgraph.Cholesky, 3, 1, 1, 0.1)
	fmt.Printf("problem: %s T=%d (%d tasks) on %s\n",
		prob.Graph.Kind, prob.Graph.Tiles, prob.Graph.NumTasks(), prob.Platform)

	// Train with A2C for a couple thousand episodes.
	agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1})
	cfg := rl.DefaultConfig()
	cfg.Episodes = 2500
	trainer := rl.NewTrainer(agent, prob, cfg)
	hist, err := trainer.Run(func(st rl.EpisodeStats) {
		if st.Episode%500 == 0 {
			fmt.Printf("  episode %4d  reward %+.3f  makespan %6.1f ms\n",
				st.Episode, st.Reward, st.Makespan)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: HEFT baseline %.1f ms, final mean reward %+.3f\n\n",
		hist.BaselineMakespan, hist.FinalMeanReward(100))

	// Head-to-head against HEFT (static) and MCT (dynamic) across noise.
	for _, sigma := range []float64{0, 0.25, 0.5} {
		var readys, heft, mct []float64
		h := sched.HEFT(prob.Graph, prob.Platform, prob.Timing)
		for seed := int64(0); seed < 5; seed++ {
			opts := func() sim.Options {
				return sim.Options{Sigma: sigma, Rng: rand.New(rand.NewSource(seed))}
			}
			if r, err := sim.Simulate(prob.Graph, prob.Platform, prob.Timing, core.NewPolicy(agent), opts()); err == nil {
				readys = append(readys, r.Makespan)
			}
			if r, err := sim.Simulate(prob.Graph, prob.Platform, prob.Timing, sched.NewStaticPolicy(h), opts()); err == nil {
				heft = append(heft, r.Makespan)
			}
			if r, err := sim.Simulate(prob.Graph, prob.Platform, prob.Timing, sched.MCTPolicy{}, opts()); err == nil {
				mct = append(mct, r.Makespan)
			}
		}
		fmt.Printf("σ=%.2f  READYS %6.1f ms   HEFT %6.1f ms   MCT %6.1f ms\n",
			sigma, exp.Summarise(readys).Mean, exp.Summarise(heft).Mean, exp.Summarise(mct).Mean)
	}
}
