// Transfer learning (§V-F): train a READYS agent on a *small* Cholesky DAG,
// then apply it unchanged to much larger instances and compare with HEFT and
// MCT. Because every state feature is normalised, the learned policy
// transfers across problem sizes — the paper's key practicality argument
// (training once on a cheap instance instead of per-size).
//
// Run with:
//
//	go run ./examples/transfer
package main

import (
	"fmt"
	"log"
	"math/rand"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func main() {
	const trainT = 4
	fmt.Printf("training READYS on Cholesky T=%d (%d tasks), 2 CPUs + 2 GPUs...\n",
		trainT, taskgraph.CholeskyTaskCount(trainT))
	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, trainT, 2, 2)
	agent, err := exp.LoadOrTrain(spec, exp.DefaultModelsDir(), exp.EpisodesFor(taskgraph.Cholesky, trainT))
	if err != nil {
		log.Fatal(err)
	}

	for _, testT := range []int{6, 8, 10, 12} {
		g := taskgraph.NewCholesky(testT)
		prob := core.Problem{
			Graph:    g,
			Platform: spec.Problem().Platform,
			Timing:   spec.Problem().Timing,
			Sigma:    0.3,
		}
		heft := sched.HEFT(g, prob.Platform, prob.Timing)
		var readys, heftMs, mct []float64
		for seed := int64(0); seed < 5; seed++ {
			opts := func() sim.Options {
				return sim.Options{Sigma: prob.Sigma, Rng: rand.New(rand.NewSource(seed))}
			}
			if r, err := sim.Simulate(g, prob.Platform, prob.Timing, core.NewPolicy(agent), opts()); err == nil {
				readys = append(readys, r.Makespan)
			}
			if r, err := sim.Simulate(g, prob.Platform, prob.Timing, sched.NewStaticPolicy(heft), opts()); err == nil {
				heftMs = append(heftMs, r.Makespan)
			}
			if r, err := sim.Simulate(g, prob.Platform, prob.Timing, sched.MCTPolicy{}, opts()); err == nil {
				mct = append(mct, r.Makespan)
			}
		}
		r, h, m := exp.Summarise(readys), exp.Summarise(heftMs), exp.Summarise(mct)
		fmt.Printf("test T=%2d (%3d tasks, σ=0.3): READYS %7.1f ms | HEFT %7.1f ms (x%.3f) | MCT %7.1f ms (x%.3f)\n",
			testT, g.NumTasks(), r.Mean, h.Mean, h.Mean/r.Mean, m.Mean, m.Mean/r.Mean)
	}
	fmt.Println("\nratios above 1.000 mean the transferred agent wins without any retraining")
}
