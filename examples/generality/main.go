// Generality: READYS is not tied to the three factorisation kernels — any
// DAG with typed tasks can be scheduled. This example trains agents on two
// very different graph shapes (a wavefront stencil and a fork-join pipeline)
// with the PPO extension instead of A2C, and also demonstrates the
// communication-cost extension that the paper's overlap assumption sets to
// zero.
//
// Run with:
//
//	go run ./examples/generality
package main

import (
	"fmt"
	"log"
	"math/rand"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/platform"
	"readys/internal/rl"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func main() {
	for _, kind := range []taskgraph.Kind{taskgraph.Stencil, taskgraph.ForkJoin} {
		prob := core.NewProblem(kind, 4, 2, 2, 0.1)
		fmt.Printf("=== %s T=4: %d tasks, critical path %d ===\n",
			kind, prob.Graph.NumTasks(), prob.Graph.CriticalPathLength())

		agent := core.NewAgent(core.Config{Window: 2, Layers: 2, Hidden: 16, Seed: 1})
		cfg := rl.DefaultPPOConfig()
		cfg.Iterations = 150
		cfg.EpisodesPerIter = 6
		hist, err := rl.NewPPOTrainer(agent, prob, cfg).Run(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PPO trained %d episodes, HEFT baseline %.1f ms, final mean reward %+.3f\n",
			len(hist.Episodes), hist.BaselineMakespan, hist.FinalMeanReward(100))

		heft := sched.HEFT(prob.Graph, prob.Platform, prob.Timing)
		var readys, heftMs, mct []float64
		for seed := int64(0); seed < 5; seed++ {
			opts := func() sim.Options {
				return sim.Options{Sigma: 0.3, Rng: rand.New(rand.NewSource(seed))}
			}
			if r, err := sim.Simulate(prob.Graph, prob.Platform, prob.Timing, core.NewPolicy(agent), opts()); err == nil {
				readys = append(readys, r.Makespan)
			}
			if r, err := sim.Simulate(prob.Graph, prob.Platform, prob.Timing, sched.NewStaticPolicy(heft), opts()); err == nil {
				heftMs = append(heftMs, r.Makespan)
			}
			if r, err := sim.Simulate(prob.Graph, prob.Platform, prob.Timing, sched.MCTPolicy{}, opts()); err == nil {
				mct = append(mct, r.Makespan)
			}
		}
		fmt.Printf("σ=0.3: READYS %.1f ms | HEFT %.1f ms | MCT %.1f ms\n\n",
			exp.Summarise(readys).Mean, exp.Summarise(heftMs).Mean, exp.Summarise(mct).Mean)
	}

	// Communication extension: how much does a PCIe-class interconnect cost,
	// and when does it start to matter?
	fmt.Println("=== communication sensitivity (Cholesky T=6, HEFT schedule) ===")
	g := taskgraph.NewCholesky(6)
	plat := platform.New(2, 2)
	tt := platform.TimingFor(taskgraph.Cholesky)
	for _, bw := range []float64{16e6, 1.6e6, 1.6e5} { // 16 GB/s, 1.6 GB/s, 160 MB/s
		comm := &platform.CommModel{LatencyMs: 0.01, TileBytes: 960 * 960 * 8, BandwidthBytesPerMs: bw}
		h := sched.HEFTComm(g, plat, tt, comm)
		res, err := sim.Simulate(g, plat, tt, sched.NewStaticPolicy(h), sim.Options{
			Rng: rand.New(rand.NewSource(1)), Comm: comm,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bandwidth %8.1f MB/s: transfer %5.2f ms/tile → makespan %7.1f ms\n",
			bw/1e3, comm.Cost(0, 1), res.Makespan)
	}
	fmt.Println("\nat PCIe speeds communication is negligible — the paper's §III-A assumption")
}
