// Cholesky on a heterogeneous node: schedule the tiled Cholesky factorisation
// of an 8x8 tile matrix (120 tasks) on 2 CPUs + 2 GPUs with every scheduler
// in the repository, print the resulting makespans and per-resource
// utilisation, and dump READYS's schedule as a Gantt CSV.
//
// Uses the cached checkpoint from `readys-train -all` when present
// (READYS_MODELS_DIR or ./models); otherwise trains one on the fly.
//
// Run with:
//
//	go run ./examples/cholesky-cluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func main() {
	const T = 8
	g := taskgraph.NewCholesky(T)
	plat := platform.New(2, 2)
	tt := platform.TimingFor(taskgraph.Cholesky)
	sigma := 0.2
	fmt.Printf("Cholesky T=%d: %d tasks, critical path %d; platform %s; σ=%.1f\n\n",
		T, g.NumTasks(), g.CriticalPathLength(), plat, sigma)

	spec := exp.DefaultAgentSpec(taskgraph.Cholesky, T, 2, 2)
	agent, err := exp.LoadOrTrain(spec, exp.DefaultModelsDir(), exp.EpisodesFor(taskgraph.Cholesky, T))
	if err != nil {
		log.Fatal(err)
	}

	heft := sched.HEFT(g, plat, tt)
	policies := []struct {
		name string
		pol  sim.Policy
	}{
		{"READYS", core.NewPolicy(agent)},
		{"HEFT (static replay)", sched.NewStaticPolicy(heft)},
		{"MCT", sched.MCTPolicy{}},
		{"rank-greedy", sched.NewRankPolicy(g, plat, tt)},
		{"FIFO", sched.FIFOPolicy{}},
		{"random", sched.RandomPolicy{Rng: rand.New(rand.NewSource(99))}},
	}

	// HEFT's mean is the reference for the "vs HEFT" column; compute it first.
	var heftMean float64
	{
		var ms []float64
		for seed := int64(0); seed < 5; seed++ {
			res, err := sim.Simulate(g, plat, tt, sched.NewStaticPolicy(heft),
				sim.Options{Sigma: sigma, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				log.Fatal(err)
			}
			ms = append(ms, res.Makespan)
		}
		heftMean = exp.Summarise(ms).Mean
	}

	fmt.Printf("%-22s %10s %10s   %s\n", "scheduler", "mean ms", "vs HEFT", "utilisation CPU0 CPU1 GPU0 GPU1")
	for _, p := range policies {
		var ms []float64
		var lastRes sim.Result
		for seed := int64(0); seed < 5; seed++ {
			res, err := sim.Simulate(g, plat, tt, p.pol, sim.Options{Sigma: sigma, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				log.Fatalf("%s: %v", p.name, err)
			}
			ms = append(ms, res.Makespan)
			lastRes = res
		}
		mean := exp.Summarise(ms).Mean
		util := sim.ResourceUtilisation(plat, lastRes)
		fmt.Printf("%-22s %10.1f %10.3f   %.2f %.2f %.2f %.2f\n",
			p.name, mean, heftMean/mean, util[0], util[1], util[2], util[3])
	}

	// Dump READYS's last schedule for plotting.
	res, err := sim.Simulate(g, plat, tt, core.NewPolicy(agent), sim.Options{Sigma: sigma, Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("readys_gantt.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sim.WriteGanttCSV(f, g, plat, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote readys_gantt.csv (one row per task placement)")
}
