// Noise sweep: the paper's central claim is that a static schedule (HEFT)
// degrades as task-duration uncertainty grows, while dynamic strategies
// (READYS, MCT) adapt. This example sweeps σ on an LU factorisation and
// prints how each scheduler's makespan inflates relative to its own
// noise-free performance, plus the READYS-vs-baseline ratios.
//
// Run with:
//
//	go run ./examples/noise-sweep
package main

import (
	"fmt"
	"log"
	"math/rand"

	"readys/internal/core"
	"readys/internal/exp"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

func main() {
	const T = 4
	spec := exp.DefaultAgentSpec(taskgraph.LU, T, 2, 2)
	fmt.Printf("LU T=%d (%d tasks) on 2 CPUs + 2 GPUs\n", T, taskgraph.LUTaskCount(T))
	agent, err := exp.LoadOrTrain(spec, exp.DefaultModelsDir(), exp.EpisodesFor(taskgraph.LU, T))
	if err != nil {
		log.Fatal(err)
	}

	g := taskgraph.NewLU(T)
	prob := spec.Problem()
	heft := sched.HEFT(g, prob.Platform, prob.Timing)

	mean := func(pol func() sim.Policy, sigma float64) float64 {
		var ms []float64
		for seed := int64(0); seed < 8; seed++ {
			res, err := sim.Simulate(g, prob.Platform, prob.Timing, pol(),
				sim.Options{Sigma: sigma, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				log.Fatal(err)
			}
			ms = append(ms, res.Makespan)
		}
		return exp.Summarise(ms).Mean
	}

	readys0 := mean(func() sim.Policy { return core.NewPolicy(agent) }, 0)
	heft0 := mean(func() sim.Policy { return sched.NewStaticPolicy(heft) }, 0)
	mct0 := mean(func() sim.Policy { return sched.MCTPolicy{} }, 0)

	fmt.Printf("\n%-6s | %-28s | %-28s | %s\n", "σ", "READYS ms (vs σ=0)", "HEFT ms (vs σ=0)", "MCT ms (vs σ=0)")
	for _, sigma := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0} {
		r := mean(func() sim.Policy { return core.NewPolicy(agent) }, sigma)
		h := mean(func() sim.Policy { return sched.NewStaticPolicy(heft) }, sigma)
		m := mean(func() sim.Policy { return sched.MCTPolicy{} }, sigma)
		fmt.Printf("%-6.2f | %8.1f  (x%5.3f)          | %8.1f  (x%5.3f)          | %8.1f  (x%5.3f)\n",
			sigma, r, r/readys0, h, h/heft0, m, m/mct0)
	}
	fmt.Println("\nthe static schedule's inflation factor should grow fastest with σ")
}
