package readys_test

import (
	"path/filepath"
	"testing"

	"readys"
)

// TestPublicAPIEndToEnd drives the facade exactly as the README quickstart
// does: build a problem, train briefly, evaluate, compare with baselines,
// save and restore.
func TestPublicAPIEndToEnd(t *testing.T) {
	prob := readys.NewProblem(readys.Cholesky, 3, 1, 1, 0.1)
	if prob.Graph.NumTasks() != 10 {
		t.Fatalf("T=3 Cholesky should have 10 tasks, got %d", prob.Graph.NumTasks())
	}

	cfg := readys.DefaultAgentConfig()
	cfg.Hidden = 8
	cfg.Layers = 1
	agent := readys.NewAgent(cfg)

	tcfg := readys.DefaultTrainConfig()
	tcfg.Episodes = 10
	hist, err := readys.Train(agent, prob, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Episodes) != 10 {
		t.Fatalf("history has %d episodes", len(hist.Episodes))
	}

	ms, err := readys.Evaluate(agent, prob, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0] <= 0 {
		t.Fatalf("evaluate returned %v", ms)
	}

	if h := readys.HEFTMakespan(prob); h <= 0 {
		t.Fatalf("HEFT makespan %v", h)
	}
	if m, err := readys.MCTMakespan(prob, 1); err != nil || m <= 0 {
		t.Fatalf("MCT makespan %v err %v", m, err)
	}

	res, err := readys.Schedule(agent, prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != prob.Graph.NumTasks() {
		t.Fatalf("schedule has %d placements", len(res.Trace))
	}

	path := filepath.Join(t.TempDir(), "agent.json")
	if err := readys.SaveAgent(agent, path, map[string]string{"demo": "1"}); err != nil {
		t.Fatal(err)
	}
	restored := readys.NewAgent(cfg)
	meta, err := readys.LoadAgent(restored, path)
	if err != nil {
		t.Fatal(err)
	}
	if meta["demo"] != "1" {
		t.Fatalf("meta %v", meta)
	}
	// Transfer to a larger size must work out of the box.
	big := readys.NewProblem(readys.Cholesky, 6, 1, 1, 0.1)
	if _, err := readys.Schedule(restored, big, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPublicGraphConstructors(t *testing.T) {
	for _, kind := range []readys.Kind{readys.Cholesky, readys.LU, readys.QR} {
		g := readys.NewGraph(kind, 4)
		if g.NumTasks() == 0 || g.Validate() != nil {
			t.Fatalf("%v graph invalid", kind)
		}
	}
	p := readys.NewPlatform(2, 2)
	if p.Size() != 4 {
		t.Fatal("platform size")
	}
}
