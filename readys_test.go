package readys_test

import (
	"path/filepath"
	"testing"

	"readys"
)

// TestPublicAPIEndToEnd drives the facade exactly as the README quickstart
// does: build a problem, train briefly, evaluate, compare with baselines,
// save and restore.
func TestPublicAPIEndToEnd(t *testing.T) {
	prob, err := readys.NewProblem(readys.Cholesky, 3, 1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if prob.Graph.NumTasks() != 10 {
		t.Fatalf("T=3 Cholesky should have 10 tasks, got %d", prob.Graph.NumTasks())
	}

	cfg := readys.DefaultAgentConfig()
	cfg.Hidden = 8
	cfg.Layers = 1
	agent := readys.NewAgent(cfg)

	tcfg := readys.DefaultTrainConfig()
	tcfg.Episodes = 10
	hist, err := readys.Train(agent, prob, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Episodes) != 10 {
		t.Fatalf("history has %d episodes", len(hist.Episodes))
	}

	ms, err := readys.Evaluate(agent, prob, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0] <= 0 {
		t.Fatalf("evaluate returned %v", ms)
	}

	if h := readys.HEFTMakespan(prob); h <= 0 {
		t.Fatalf("HEFT makespan %v", h)
	}
	if m, err := readys.MCTMakespan(prob, 1); err != nil || m <= 0 {
		t.Fatalf("MCT makespan %v err %v", m, err)
	}

	res, err := readys.Schedule(agent, prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != prob.Graph.NumTasks() {
		t.Fatalf("schedule has %d placements", len(res.Trace))
	}

	path := filepath.Join(t.TempDir(), "agent.json")
	if err := readys.SaveAgent(agent, path, map[string]string{"demo": "1"}); err != nil {
		t.Fatal(err)
	}
	restored := readys.NewAgent(cfg)
	meta, err := readys.LoadAgent(restored, path)
	if err != nil {
		t.Fatal(err)
	}
	if meta["demo"] != "1" {
		t.Fatalf("meta %v", meta)
	}
	// Transfer to a larger size must work out of the box.
	big, err := readys.NewProblem(readys.Cholesky, 6, 1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err = readys.Schedule(restored, big, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := readys.ValidateSchedule(big, res); err != nil {
		t.Fatalf("transfer schedule invalid: %v", err)
	}

	clone, err := readys.CloneAgent(restored)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readys.Schedule(clone, big, 2); err != nil {
		t.Fatalf("clone schedule: %v", err)
	}
}

func TestPublicGraphConstructors(t *testing.T) {
	for _, kind := range []readys.Kind{readys.Cholesky, readys.LU, readys.QR} {
		g, err := readys.NewGraph(kind, 4)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() == 0 || g.Validate() != nil {
			t.Fatalf("%v graph invalid", kind)
		}
	}
	p, err := readys.NewPlatform(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 {
		t.Fatal("platform size")
	}
}

// TestConstructorValidation covers the error paths of the public
// constructors: they must return errors, not panic or silently build a
// degenerate problem.
func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func() error
	}{
		{"graph T=0", func() error { _, err := readys.NewGraph(readys.Cholesky, 0); return err }},
		{"graph T<0", func() error { _, err := readys.NewGraph(readys.LU, -3); return err }},
		{"graph bad kind", func() error { _, err := readys.NewGraph(readys.Kind(99), 4); return err }},
		{"platform empty", func() error { _, err := readys.NewPlatform(0, 0); return err }},
		{"platform negative CPUs", func() error { _, err := readys.NewPlatform(-1, 2); return err }},
		{"platform negative GPUs", func() error { _, err := readys.NewPlatform(2, -1); return err }},
		{"problem T=0", func() error { _, err := readys.NewProblem(readys.Cholesky, 0, 2, 2, 0.1); return err }},
		{"problem empty platform", func() error { _, err := readys.NewProblem(readys.QR, 4, 0, 0, 0.1); return err }},
		{"problem sigma<0", func() error { _, err := readys.NewProblem(readys.Cholesky, 4, 2, 2, -0.1); return err }},
		{"problem bad kind", func() error { _, err := readys.NewProblem(readys.Kind(99), 4, 2, 2, 0.1); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.build(); err == nil {
				t.Fatal("expected an error, got nil")
			}
		})
	}
}

// TestRunnerValidation covers the episode-running entry points on malformed
// inputs: nil agents and hand-assembled broken problems.
func TestRunnerValidation(t *testing.T) {
	good, err := readys.NewProblem(readys.Cholesky, 2, 1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := readys.DefaultAgentConfig()
	cfg.Hidden = 8
	cfg.Layers = 1
	agent := readys.NewAgent(cfg)

	var empty readys.Problem // zero-valued: no graph, no platform
	negSigma := good
	negSigma.Sigma = -1

	cases := []struct {
		name string
		run  func() error
	}{
		{"schedule nil agent", func() error { _, err := readys.Schedule(nil, good, 1); return err }},
		{"schedule empty problem", func() error { _, err := readys.Schedule(agent, empty, 1); return err }},
		{"schedule sigma<0", func() error { _, err := readys.Schedule(agent, negSigma, 1); return err }},
		{"evaluate nil agent", func() error { _, err := readys.Evaluate(nil, good, 1, 1); return err }},
		{"evaluate zero runs", func() error { _, err := readys.Evaluate(agent, good, 0, 1); return err }},
		{"evaluate empty problem", func() error { _, err := readys.Evaluate(agent, empty, 1, 1); return err }},
		{"train nil agent", func() error { _, err := readys.Train(nil, good, readys.DefaultTrainConfig()); return err }},
		{"train empty problem", func() error { _, err := readys.Train(agent, empty, readys.DefaultTrainConfig()); return err }},
		{"mct empty problem", func() error { _, err := readys.MCTMakespan(empty, 1); return err }},
		{"clone nil agent", func() error { _, err := readys.CloneAgent(nil); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(); err == nil {
				t.Fatal("expected an error, got nil")
			}
		})
	}
}
