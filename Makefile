# Pre-merge checks for the READYS reproduction.
#
#   make check     — everything a PR must pass: build, vet, tests, race tests,
#                    observability smoke test
#   make race      — just the race-detector runs (serving + agent core)
#   make obs-smoke — end-to-end telemetry/trace pipeline check
#   make bench     — serving-throughput benchmark
#   make serve     — run the scheduling daemon against ./models

GO ?= go
OBS_TMP ?= /tmp/readys-obs-smoke

.PHONY: check build vet test race obs-smoke bench serve

check: build vet test race obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages run under the race detector: internal/serve
# (registry, pool, handlers) and internal/core (shared-agent inference).
race:
	$(GO) test -race ./internal/serve/... ./internal/core/...

# End-to-end observability check: train a tiny agent with -telemetry, simulate
# one DAG with -trace, then assert both artifacts are valid and non-empty.
obs-smoke:
	rm -rf $(OBS_TMP) && mkdir -p $(OBS_TMP)
	$(GO) run ./cmd/readys-train -kind cholesky -T 2 -episodes 3 -quiet \
		-out $(OBS_TMP)/models -telemetry $(OBS_TMP)/train.jsonl
	$(GO) run ./cmd/readys-sim -kind cholesky -T 2 -policy mct \
		-trace $(OBS_TMP)/trace.json > /dev/null
	$(GO) run ./cmd/readys-obs-check -jsonl $(OBS_TMP)/train.jsonl \
		-trace $(OBS_TMP)/trace.json
	rm -rf $(OBS_TMP)

bench:
	$(GO) test -bench BenchmarkServeScheduleThroughput -benchtime 2s -run '^$$' ./internal/serve/

serve:
	$(GO) run ./cmd/readys-serve -addr :8080 -models models
