# Pre-merge checks for the READYS reproduction.
#
#   make check     — everything a PR must pass: build, vet, tests, race tests
#   make race      — just the race-detector runs (serving + agent core)
#   make bench     — serving-throughput benchmark
#   make serve     — run the scheduling daemon against ./models

GO ?= go

.PHONY: check build vet test race bench serve

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages run under the race detector: internal/serve
# (registry, pool, handlers) and internal/core (shared-agent inference).
race:
	$(GO) test -race ./internal/serve/... ./internal/core/...

bench:
	$(GO) test -bench BenchmarkServeScheduleThroughput -benchtime 2s -run '^$$' ./internal/serve/

serve:
	$(GO) run ./cmd/readys-serve -addr :8080 -models models
