# Pre-merge checks for the READYS reproduction.
#
#   make check       — everything a PR must pass: build, vet, tests, decision-
#                      equivalence gate, race tests, observability smoke test,
#                      perf-regression gate, fleet, stream and gateway smoke
#                      tests
#   make equiv       — decision-equivalence gate: the incremental/serving
#                      decision paths must match the full-rebuild tape oracle
#                      (bitwise for float64; bounded divergence for the
#                      quantized tiers)
#   make race        — just the race-detector runs (serving, agent core, RL,
#                      fleet, fault-injecting simulator, streaming arrivals)
#   make obs-smoke   — end-to-end telemetry/trace pipeline check: telemetry
#                      JSONL, sim trace, flight recorder, and a dispatcher +
#                      worker pair whose merged cross-process trace must
#                      link-validate
#   make chaos-smoke — single-seed fault-injection run through readys-sim
#                      (plan generation, kill/re-execution, strict validator)
#   make stream-smoke— tiny online-scheduling run through readys-stream
#                      (Poisson arrivals, faults mid-stream, strict union
#                      validation, trace checked by readys-obs-check)
#   make fleet-smoke — dispatcher + worker end-to-end check (train job,
#                      artifact verification, train → serve publish)
#   make gateway-smoke — shard-router end-to-end check: two batch-enabled
#                      replicas behind readys-gateway, a replica killed under
#                      concurrent load (failover, identical responses), and
#                      the client → gateway → replica trace link-validated
#   make bench       — hot-path benchmark snapshot (writes BENCH_<rev>.json)
#   make bench-smoke — fast readys-bench sanity run
#   make bench-compare — perf-regression gate: quick bench diffed against the
#                      committed $(BENCH_BASE); fails on a >$(BENCH_TOL)
#                      regression of any key metric (part of make check)
#   make bench-serve — serving-throughput benchmark
#   make serve       — run the scheduling daemon against ./models
#   make fleet       — run the fleet dispatcher, publishing into ./models

GO ?= go
OBS_TMP ?= /tmp/readys-obs-smoke
# Perf gate: the committed trajectory snapshot to diff against and the
# fractional regression tolerance (0.20 = a key metric may be up to 20% worse
# before the gate trips; raise via `make check BENCH_TOL=0.35` on known-slow
# machines).
BENCH_BASE ?= BENCH_273bd3e.json
BENCH_TOL ?= 0.20

.PHONY: check build vet test equiv race obs-smoke chaos-smoke stream-smoke fleet-smoke gateway-smoke bench bench-smoke bench-compare bench-serve serve fleet gateway

check: build vet test equiv race obs-smoke chaos-smoke stream-smoke fleet-smoke gateway-smoke bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Decision-equivalence proofs, named explicitly so a failure reads as "the
# optimised decision path diverged from the oracle" rather than a generic
# test break: incremental state vs full rebuild (bitwise, incl. faults and
# streaming AddJob invalidation), float64 serving engine vs the autograd
# tape, quantized-tier divergence bounds, and the training guard. These also
# run under `make test`; this target is the canonical gate.
equiv:
	$(GO) test -run 'TestIncremental|TestServing|TestQuantizedBoundedDivergence|TestBatch' ./internal/core/
	$(GO) test -run 'TestStreamIncrementalIdentical' ./internal/stream/
	$(GO) test -run 'TestBatchedServingBitIdentical' ./internal/serve/

# Concurrency-sensitive packages run under the race detector: internal/serve
# (registry, pool, handlers, cross-request batching), internal/core
# (shared-agent inference, the batch coalescer), internal/rl (parallel batch
# rollouts), internal/fleet (dispatcher, leases, workers), internal/gateway
# (health prober, concurrent failover), internal/sim (fault injection under
# parallel rollouts), and internal/stream (stream rollouts share agents
# across workers).
race:
	$(GO) test -race ./internal/serve/... ./internal/core/... ./internal/rl/... ./internal/fleet/... ./internal/gateway/... ./internal/sim/... ./internal/stream/...

# End-to-end observability check. Phase 1 artifacts: train a tiny agent with
# -telemetry, simulate one DAG with -trace, assert both are valid and
# non-empty. Phase 2 artifacts: a streaming run's flight recorder summarized
# by readys-obs-check, and a real dispatcher + worker pair (fleet smoke)
# whose two per-process span exports are merged — both by the smoke itself
# and again through readys-obs-check -merge — and must pass cross-process
# parent-link validation (-links).
obs-smoke:
	rm -rf $(OBS_TMP) && mkdir -p $(OBS_TMP)
	$(GO) run ./cmd/readys-train -kind cholesky -T 2 -episodes 3 -quiet \
		-out $(OBS_TMP)/models -telemetry $(OBS_TMP)/train.jsonl
	$(GO) run ./cmd/readys-sim -kind cholesky -T 2 -policy mct \
		-trace $(OBS_TMP)/trace.json > /dev/null
	$(GO) run ./cmd/readys-obs-check -jsonl $(OBS_TMP)/train.jsonl \
		-trace $(OBS_TMP)/trace.json
	$(GO) run ./cmd/readys-stream -rate 6 -jobs 6 -sigma 0.1 \
		-policy mct -faults -fault-rate 1 -seed 7 -quiet \
		-flight $(OBS_TMP)/flight.jsonl -metrics $(OBS_TMP)/metrics.prom > /dev/null
	$(GO) run ./cmd/readys-obs-check -flight $(OBS_TMP)/flight.jsonl
	$(GO) run ./cmd/readys-obs-check -flight $(OBS_TMP)/flight.jsonl -flight-kind decision
	$(GO) run ./cmd/readys-fleet -smoke -trace-out $(OBS_TMP)/fleet
	$(GO) run ./cmd/readys-obs-check -merge $(OBS_TMP)/fleet/remerged.json \
		$(OBS_TMP)/fleet/dispatcher.json $(OBS_TMP)/fleet/worker.json
	$(GO) run ./cmd/readys-obs-check -trace $(OBS_TMP)/fleet/remerged.json -links
	rm -rf $(OBS_TMP)

# Single-seed chaos check: a tiny DAG scheduled through readys-sim with fault
# injection on. Exercises plan generation, in-flight kills, re-execution and
# the strict fault-aware validator (readys-sim fails hard if any slice
# overlaps an outage or a duration leaves the timing envelope).
chaos-smoke:
	$(GO) run ./cmd/readys-sim -kind cholesky -T 3 -cpus 1 -gpus 1 -sigma 0.1 \
		-policy mct -faults -fault-rate 2 -seed 7 > /dev/null
	@echo chaos-smoke OK

# Online-scheduling smoke: a tiny mixed-family Poisson stream scheduled
# through readys-stream with faults firing mid-stream. Exercises arrivals on
# the persistent cluster, kills/re-execution across jobs and the strict union
# validator (readys-stream fails hard on an invalid schedule), then checks the
# emitted Chrome trace with readys-obs-check.
STREAM_TMP ?= /tmp/readys-stream-smoke
stream-smoke:
	rm -rf $(STREAM_TMP) && mkdir -p $(STREAM_TMP)
	$(GO) run ./cmd/readys-stream -rate 6 -jobs 6 -sigma 0.1 \
		-policy heft-per-job -faults -fault-rate 1 -seed 7 -quiet \
		-trace $(STREAM_TMP)/trace.json > /dev/null
	$(GO) run ./cmd/readys-obs-check -trace $(STREAM_TMP)/trace.json
	rm -rf $(STREAM_TMP)
	@echo stream-smoke OK

# Full perf snapshot: SpMM vs dense propagation, decisions/sec, training
# episodes/sec (sparse vs DenseProp ablation, workers 1 vs GOMAXPROCS).
# Writes BENCH_<rev>.json for committing alongside the code it measures.
bench:
	$(GO) run ./cmd/readys-bench

# Smoke variant of the same binary: tiny sizes, seconds not minutes, output
# discarded. Guards against the benchmark harness itself rotting.
bench-smoke:
	$(GO) run ./cmd/readys-bench -quick -out /tmp/readys-bench-smoke.json
	rm -f /tmp/readys-bench-smoke.json

# Perf-regression gate (subsumes bench-smoke in make check): the quick bench
# diffed row-by-row against the committed snapshot. Prints the per-metric
# delta table and exits non-zero when spmm ns/op, ns_per_decision, train
# eps/sec or stream jobs/sec regressed more than BENCH_TOL.
bench-compare:
	$(GO) run ./cmd/readys-bench -quick -compare $(BENCH_BASE) -tol $(BENCH_TOL)

bench-serve:
	$(GO) test -bench BenchmarkServeScheduleThroughput -benchtime 2s -run '^$$' ./internal/serve/

# End-to-end fleet check: an in-process dispatcher and worker run one tiny
# train job through the wire protocol, then the checkpoint artifact, history
# JSONL and the published train → serve copy are verified.
fleet-smoke:
	$(GO) run ./cmd/readys-fleet -smoke

# End-to-end gateway check: two in-process batch-enabled serve replicas behind
# readys-gateway. Phase 1 routes a concurrent burst by model hash, phase 2
# kills the owning replica and requires transparent failover with responses
# identical to the pre-kill run, phase 3 asserts the survivor actually
# coalesced batches, phase 4 exports client/gateway/replica span files whose
# merge must pass cross-process parent-link validation.
GW_TMP ?= /tmp/readys-gateway-smoke
gateway-smoke:
	rm -rf $(GW_TMP) && mkdir -p $(GW_TMP)
	$(GO) run ./cmd/readys-gateway -smoke -trace-out $(GW_TMP)
	$(GO) run ./cmd/readys-obs-check -merge $(GW_TMP)/merged.json \
		$(GW_TMP)/client.json $(GW_TMP)/gateway.json \
		$(GW_TMP)/replica1.json $(GW_TMP)/replica2.json
	$(GO) run ./cmd/readys-obs-check -trace $(GW_TMP)/merged.json -links
	rm -rf $(GW_TMP)
	@echo gateway-smoke OK

serve:
	$(GO) run ./cmd/readys-serve -addr :8080 -models models

fleet:
	$(GO) run ./cmd/readys-fleet -addr :9090 -dir fleet -publish models

# Front two local replicas started by hand, e.g.
#   make serve & $(GO) run ./cmd/readys-serve -addr :8081 -models models -batch &
gateway:
	$(GO) run ./cmd/readys-gateway -addr :8090 -replicas http://127.0.0.1:8080,http://127.0.0.1:8081
