package readys_test

import (
	"fmt"
	"math/rand"
	"testing"

	"readys/internal/core"
	"readys/internal/platform"
	"readys/internal/sched"
	"readys/internal/sim"
	"readys/internal/taskgraph"
)

// chaosSeeds is the number of random (DAG, fault plan) pairs each policy is
// driven through. Every seed produces a different layered DAG and a different
// fault regime (the rate cycles through mild, standard and harsh).
const chaosSeeds = 25

// chaosPolicies enumerates the schedulers under chaos test. Each entry
// constructs a fresh policy per run so replays carry no state over.
func chaosPolicies(g *taskgraph.Graph, plat platform.Platform, tt platform.Timing) map[string]func() sim.Policy {
	return map[string]func() sim.Policy{
		"readys": func() sim.Policy {
			// An untrained agent exercises the full featurise→GCN→decide
			// path; greedy decoding keeps it deterministic.
			return core.NewPolicy(core.NewAgent(core.Config{Window: 1, Layers: 1, Hidden: 8, Seed: 11}))
		},
		"heft":        func() sim.Policy { return sched.NewStaticPolicy(sched.HEFT(g, plat, tt)) },
		"replan-heft": func() sim.Policy { return sched.NewReplanHEFTPolicy() },
		"mct":         func() sim.Policy { return sched.MCTPolicy{} },
		"minmin":      func() sim.Policy { return sched.MinMinPolicy{} },
	}
}

// TestChaosAllPoliciesSurviveRandomFaults is the chaos property suite: for
// randomized layered DAGs under randomized fault plans, every policy must
// (a) complete all tasks, (b) produce a schedule that passes the strict
// fault-aware validator, and (c) be bit-reproducible — the same seed yields
// the same makespan on replay.
func TestChaosAllPoliciesSurviveRandomFaults(t *testing.T) {
	rates := []float64{0.5, 1, 2}
	for seed := int64(0); seed < chaosSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			cfg := taskgraph.RandomConfig{Layers: 5, WidthMin: 2, WidthMax: 5, EdgeProb: 0.35, LongEdgeProb: 0.1}
			g := taskgraph.NewLayeredRandom(rng, cfg)
			plat := platform.New(2, 2)
			tt := platform.TimingFor(taskgraph.Random)

			rate := rates[seed%int64(len(rates))]
			horizon := core.FaultHorizonFactor * sched.HEFT(g, plat, tt).Makespan
			plan := sim.GeneratePlan(seed*2654435761+97, plat.Size(), sim.SpecForRate(rate, horizon))
			sigma := 0.1 * float64(seed%4)

			for name, mk := range chaosPolicies(g, plat, tt) {
				run := func() sim.Result {
					res, err := sim.Simulate(g, plat, tt, mk(), sim.Options{
						Sigma: sigma, Rng: rand.New(rand.NewSource(seed + 1000)), Faults: plan})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					return res
				}
				res := run()
				if len(res.Trace) != g.NumTasks() {
					t.Fatalf("%s: %d of %d tasks completed", name, len(res.Trace), g.NumTasks())
				}
				if err := sim.ValidateResultStrict(g, res, sim.CheckOptions{
					Platform: plat, Timing: tt, Sigma: sigma, Faults: plan,
				}); err != nil {
					t.Fatalf("%s: strict validation: %v", name, err)
				}
				if again := run(); again.Makespan != res.Makespan {
					t.Fatalf("%s: replay of seed %d diverged: %v vs %v", name, seed, res.Makespan, again.Makespan)
				}
			}
		})
	}
}

// TestChaosFaultFreePlansAreInert pins the bit-inertness contract at the
// property level: on random DAGs, simulating with a nil plan and with an
// explicitly empty plan must agree exactly, noise or not.
func TestChaosFaultFreePlansAreInert(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := taskgraph.NewLayeredRandom(rng, taskgraph.DefaultRandomConfig())
		plat := platform.New(2, 1)
		tt := platform.TimingFor(taskgraph.Random)
		run := func(plan *sim.FaultPlan) sim.Result {
			res, err := sim.Simulate(g, plat, tt, sched.MCTPolicy{}, sim.Options{
				Sigma: 0.25, Rng: rand.New(rand.NewSource(seed)), Faults: plan})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		if a, b := run(nil), run(&sim.FaultPlan{}); a.Makespan != b.Makespan {
			t.Fatalf("seed %d: empty plan perturbed the simulation: %v vs %v", seed, a.Makespan, b.Makespan)
		}
	}
}
